// Frame-level invariant auditing for multi-tenant scenarios.
//
// The auditor hangs off GlobalFrameManager's decision hook and re-proves, after every
// completed manager decision, the properties the paper's design depends on:
//
//   1. Conservation — every physical frame is in exactly one pool: global queues, a
//      container's private lists (or a page variable), the manager's reserve/laundry, or
//      wired. Nothing unaccounted, and the pools sum to the machine size.
//   2. No double grant — each container owns exactly `allocated_frames` frames (by sweep),
//      every page on its private queues is owned by it, and the per-container totals sum to
//      the manager's total_specific.
//   3. FAFR order — the global allocation-ordered list is well linked, covers exactly the
//      specific frames, and its alloc_seq stamps are strictly increasing (First Allocated,
//      First Reclaimed victim order is real, not aspirational).
//   4. Reserve solvency — Flush exchanges swap frames one-for-one, so reserve + laundry
//      equals the boot-time stocking at every decision boundary (the reserve can never go
//      negative or leak).
//
// A violation fails loudly: the flight recorder (when attached) dumps the last trace events
// plus every registered probe histogram, otherwise the raw trace ring is dumped as JSON to
// stderr; either way a sim::CheckFailure is thrown with the first violated invariant.
#ifndef HIPEC_SCENARIO_INVARIANTS_H_
#define HIPEC_SCENARIO_INVARIANTS_H_

#include <cstdint>
#include <string>

#include "hipec/engine.h"
#include "obs/flight_recorder.h"

namespace hipec::scenario {

struct AuditReport {
  bool ok = true;
  std::string violation;  // first violated invariant; empty when ok
};

// One full pass over invariants 1-4. Pure observation: allocates no frames, mutates nothing.
AuditReport AuditFrameInvariants(core::HipecEngine& engine);

class InvariantAuditor {
 public:
  explicit InvariantAuditor(core::HipecEngine* engine) : engine_(engine) {}

  // Convenience for standalone use: installs AuditNow as the manager's decision hook.
  // The scenario engine instead composes AuditNow into its own hook (it also counts
  // decisions), so it does not call this.
  void Install();

  // Runs one audit; `decision` names the manager decision that just completed (for the
  // failure message). Dumps the trace and throws sim::CheckFailure on a violation.
  void AuditNow(const char* decision);

  // Attaches a flight recorder; on a violation Dump() renders the richer crash snapshot
  // (trace window + probe histograms) instead of the raw ring dump. Not owned; may be null.
  void SetFlightRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  int64_t audits_run() const { return audits_run_; }

 private:
  core::HipecEngine* engine_;
  obs::FlightRecorder* recorder_ = nullptr;
  int64_t audits_run_ = 0;
};

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_INVARIANTS_H_
