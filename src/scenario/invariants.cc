#include "scenario/invariants.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "sim/check.h"

namespace hipec::scenario {

namespace {

// Walks `queue` checking ownership and link/count agreement; adds its length to `*queued`.
void AuditPrivateQueue(const mach::PageQueue& queue, const core::Container* owner,
                       size_t* queued, AuditReport* report) {
  size_t walked = 0;
  const core::Container* foreign = nullptr;
  queue.ForEach([&](mach::VmPage* page) {
    ++walked;
    if (page->owner != owner) {
      foreign = static_cast<const core::Container*>(page->owner);
      return false;
    }
    return true;
  });
  if (foreign != nullptr && report->ok) {
    report->ok = false;
    std::ostringstream os;
    os << "queue " << queue.name() << " of container " << owner->id()
       << " holds a frame owned elsewhere (double grant)";
    report->violation = os.str();
    return;
  }
  if (walked != queue.count() && report->ok) {
    report->ok = false;
    std::ostringstream os;
    os << "queue " << queue.name() << ": count() says " << queue.count() << " but traversal saw "
       << walked;
    report->violation = os.str();
    return;
  }
  *queued += walked;
}

}  // namespace

AuditReport AuditFrameInvariants(core::HipecEngine& engine) {
  AuditReport report;
  auto fail = [&report](const std::string& message) {
    if (report.ok) {
      report.ok = false;
      report.violation = message;
    }
  };
  auto failf = [&fail](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    fail(os.str());
  };

  core::GlobalFrameManager& manager = engine.manager();
  mach::Kernel& kernel = engine.kernel();

  // --- 1. Conservation ------------------------------------------------------------------------
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting(&manager);
  if (acc.unaccounted != 0) {
    failf("conservation: ", acc.unaccounted, " frame(s) in no pool");
  }
  if (acc.Sum() != acc.total) {
    failf("conservation: pools sum to ", acc.Sum(), " but the machine has ", acc.total,
          " frames");
  }
  if (acc.container_owned != manager.total_specific()) {
    failf("conservation: sweep found ", acc.container_owned,
          " container-owned frames but total_specific is ", manager.total_specific());
  }
  if (acc.manager_owned != manager.manager_owned()) {
    failf("conservation: sweep found ", acc.manager_owned,
          " manager-owned frames but reserve+laundry is ", manager.manager_owned());
  }

  // --- 4. Reserve solvency (checked early: cheap, and 2/3 assume it) --------------------------
  if (manager.reserve_count() + manager.laundry_count() != manager.stocked_reserve()) {
    failf("reserve: reserve(", manager.reserve_count(), ") + laundry(", manager.laundry_count(),
          ") != stocked(", manager.stocked_reserve(), ")");
  }

  // --- 2. Per-container ownership / no double grant -------------------------------------------
  // One sweep gives the true per-owner frame counts; queue walks then prove each container's
  // holdings are reachable through its own lists (or page variables, which the sweep covers
  // as owned-but-off-queue).
  std::unordered_map<const void*, size_t> owned_by;
  size_t owned_total = 0;
  kernel.ForEachFrame([&](mach::VmPage* page) {
    if (page->owner != nullptr) {
      ++owned_by[page->owner];
      ++owned_total;
    }
  });

  size_t sum_allocated = 0;
  size_t owned_known = owned_by[&manager];
  for (core::Container* container : manager.containers()) {
    sum_allocated += container->allocated_frames;
    size_t swept = owned_by[container];
    owned_known += swept;
    if (swept != container->allocated_frames) {
      failf("ownership: container ", container->id(), " has allocated_frames=",
            container->allocated_frames, " but the sweep found ", swept,
            " frame(s) owned by it");
    }
    size_t queued = 0;
    AuditPrivateQueue(container->free_q(), container, &queued, &report);
    AuditPrivateQueue(container->active_q(), container, &queued, &report);
    AuditPrivateQueue(container->inactive_q(), container, &queued, &report);
    for (const auto& user_q : container->user_queues()) {
      AuditPrivateQueue(*user_q, container, &queued, &report);
    }
    if (queued > container->allocated_frames) {
      failf("ownership: container ", container->id(), " queues hold ", queued,
            " frames but only ", container->allocated_frames, " are allocated to it");
    }
  }
  if (sum_allocated != manager.total_specific()) {
    failf("ownership: per-container allocations sum to ", sum_allocated,
          " but total_specific is ", manager.total_specific());
  }
  if (owned_known != owned_total) {
    failf("ownership: ", owned_total - owned_known,
          " frame(s) owned by something that is neither a live container nor the manager "
          "(stale owner pointer)");
  }

  // --- 3. FAFR order --------------------------------------------------------------------------
  size_t list_len = 0;
  uint64_t prev_seq = 0;
  const mach::VmPage* prev = nullptr;
  for (const mach::VmPage* page = manager.alloc_head(); page != nullptr;
       page = page->alloc_next) {
    if (!page->on_alloc_list) {
      failf("fafr: frame ", page->frame_number, " is linked but not flagged on_alloc_list");
      break;
    }
    if (page->owner == nullptr || page->owner == &manager) {
      failf("fafr: frame ", page->frame_number,
            " is on the allocation list but not owned by a container");
      break;
    }
    if (page->alloc_prev != prev) {
      failf("fafr: back-link broken at frame ", page->frame_number);
      break;
    }
    if (page->alloc_seq <= prev_seq) {
      failf("fafr: alloc_seq not strictly increasing at frame ", page->frame_number, " (",
            page->alloc_seq, " after ", prev_seq, ")");
      break;
    }
    prev_seq = page->alloc_seq;
    prev = page;
    if (++list_len > acc.total) {
      fail("fafr: allocation list cycles");
      break;
    }
  }
  if (report.ok && list_len != manager.total_specific()) {
    failf("fafr: allocation list holds ", list_len, " frames but total_specific is ",
          manager.total_specific());
  }

  return report;
}

void InvariantAuditor::Install() {
  engine_->manager().SetDecisionHook([this](const char* decision) { AuditNow(decision); });
}

void InvariantAuditor::AuditNow(const char* decision) {
  ++audits_run_;
  AuditReport report = AuditFrameInvariants(*engine_);
  if (!report.ok) {
    std::fprintf(stderr, "[scenario-audit] invariant violated after decision '%s': %s\n",
                 decision, report.violation.c_str());
    if (recorder_ != nullptr) {
      recorder_->Dump(std::string("invariant-violation: ") + report.violation);
    } else {
      std::fprintf(stderr, "%s\n", engine_->kernel().tracer().DumpJson().c_str());
    }
    HIPEC_CHECK_MSG(false, "frame invariant violated after '" << decision
                               << "': " << report.violation);
  }
}

}  // namespace hipec::scenario
