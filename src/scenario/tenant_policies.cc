#include "scenario/tenant_policies.h"

#include "hipec/builder.h"
#include "policies/policies.h"

namespace hipec::scenario {

namespace ops = hipec::core::std_ops;
using core::EventBuilder;
using core::PolicyProgram;

namespace {

// PageFault shared by Greedy and Stubborn: free list -> Request -> local FIFO eviction.
std::vector<core::Instruction> GreedyPageFaultEvent() {
  EventBuilder b;
  auto take_free = b.NewLabel();
  auto evict = b.NewLabel();
  auto have_active = b.NewLabel();
  auto flush = b.NewLabel();
  auto clean = b.NewLabel();

  b.EmptyQ(ops::kFreeQueue);
  b.JumpIfFalse(take_free);  // private free list non-empty: use it
  b.Request(ops::kRequestSize, ops::kFreeQueue);
  b.JumpIfFalse(evict);  // manager said no: recycle locally
  b.Bind(take_free);
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.Return(ops::kPage);

  b.Bind(evict);
  b.EmptyQ(ops::kActiveQueue);
  b.JumpIfFalse(have_active);
  // Active empty (all frames parked elsewhere): last resort, the inactive queue. An empty
  // dequeue here raises PolicyError and terminates the tenant — acceptable, since a tenant
  // with no recyclable frame at all cannot make progress anyway.
  b.DeQueueHead(ops::kPage, ops::kInactiveQueue);
  b.JumpAlways(flush);
  b.Bind(have_active);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  b.Bind(flush);
  b.Mod(ops::kPage);
  b.JumpIfFalse(clean);
  b.Flush(ops::kPage);  // dirty victim: exchange for a clean reserve frame
  b.Bind(clean);
  b.Return(ops::kPage);
  return b.Build();
}

}  // namespace

PolicyProgram GreedyPolicy() {
  PolicyProgram program;
  program.SetEvent(core::kEventPageFault, GreedyPageFaultEvent());
  program.SetEvent(core::kEventReclaimFrame, policies::StandardReclaimEvent());
  return program;
}

PolicyProgram StubbornPolicy() {
  PolicyProgram program;
  program.SetEvent(core::kEventPageFault, GreedyPageFaultEvent());
  // Refuse cooperative reclamation: return immediately, releasing nothing.
  EventBuilder b;
  b.Return(0);
  program.SetEvent(core::kEventReclaimFrame, b.Build());
  return program;
}

PolicyProgram LoopingPolicy() {
  PolicyProgram program;
  EventBuilder b;
  auto loop = b.NewLabel();
  b.Bind(loop);
  b.JumpAlways(loop);
  b.Return(0);  // unreachable; present so the stream has a terminator
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, policies::StandardReclaimEvent());
  return program;
}

}  // namespace hipec::scenario
