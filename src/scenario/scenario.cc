#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/probe.h"
#include "policies/policies.h"
#include "scenario/invariants.h"
#include "scenario/tenant_policies.h"
#include "workloads/workload_source.h"

namespace hipec::scenario {

using mach::kPageSize;

namespace {

// Stable per-tenant stream seed: mixes the scenario seed with the tenant's ordinal so traces
// are independent of each other but fully determined by the spec.
uint64_t TenantSeed(uint64_t scenario_seed, uint64_t ordinal) {
  uint64_t x = scenario_seed * 0x9E3779B97F4A7C15ULL + (ordinal + 1) * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 31;
  return x;
}

// Probe id: virtual time consumed by each tenant scheduling slice.
const obs::ProbeId kPrbSliceNs = obs::InternProbe("scenario.slice_ns");

}  // namespace

core::PolicyProgram MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifoSecondChance:
      return policies::FifoSecondChancePolicy();
    case PolicyKind::kFifo:
      return policies::FifoPolicy();
    case PolicyKind::kLru:
      return policies::LruPolicy();
    case PolicyKind::kMru:
      return policies::MruPolicy();
    case PolicyKind::kClock:
      return policies::ClockPolicy();
    case PolicyKind::kTwoQueue:
      return policies::TwoQueuePolicy();
    case PolicyKind::kGreedy:
      return GreedyPolicy();
    case PolicyKind::kStubborn:
      return StubbornPolicy();
    case PolicyKind::kLooping:
      return LoopingPolicy();
  }
  return GreedyPolicy();
}

namespace {

// Runtime state for one tenant (specific application).
struct TenantState {
  TenantSpec spec;
  TenantResult result;
  std::unique_ptr<workloads::WorkloadSource> source;
  uint64_t region_pages = 0;  // allocated region: max(spec.pages, source->region_pages())
  mach::Task* task = nullptr;
  core::HipecRegion region;
  uint64_t addr = 0;
  uint64_t container_id = 0;
  bool arrived = false;
  bool done = false;  // no further slices (completed, terminated, departed, or torn down)
};

struct BackgroundState {
  BackgroundSpec spec;
  BackgroundResult result;
  std::unique_ptr<workloads::WorkloadSource> source;
  mach::Task* task = nullptr;
  uint64_t addr = 0;
  bool done = false;
};

class ScenarioRun {
 public:
  explicit ScenarioRun(const ScenarioSpec& spec) : spec_(spec) {
    mach::KernelParams params;
    params.total_frames = spec.total_frames;
    params.kernel_reserved_frames = spec.kernel_reserved_frames;
    params.hipec_build = true;
    params.seed = spec.seed;
    if (spec.command_decode_ns > 0) {
      params.costs.command_decode_ns = spec.command_decode_ns;
    }
    kernel_ = std::make_unique<mach::Kernel>(params);
    if (spec.trace) {
      kernel_->tracer().Enable();
    }
    engine_ = std::make_unique<core::HipecEngine>(kernel_.get(), spec.manager);
    auditor_ = std::make_unique<InvariantAuditor>(engine_.get());

    if (spec.flight_recorder_window > 0) {
      recorder_ = std::make_unique<obs::FlightRecorder>(&kernel_->tracer(),
                                                        spec.flight_recorder_window);
      recorder_->AddProbeSource("executor", &engine_->executor().probes());
      recorder_->AddProbeSource("manager", &engine_->manager().probes());
      recorder_->AddProbeSource("checker", &engine_->checker().probes());
      recorder_->AddProbeSource("disk", &kernel_->disk().probes());
      recorder_->AddProbeSource("scenario", &probes_);
      recorder_->AddCounterSource("manager", &engine_->manager().counters());
      recorder_->AddCounterSource("checker", &engine_->checker().counters());
      recorder_->AddCounterSource("executor", &engine_->executor().counters());
      if (spec.flight_recorder_sink) {
        recorder_->SetSink(spec.flight_recorder_sink);
      }
      auditor_->SetFlightRecorder(recorder_.get());
    }

    engine_->manager().SetDecisionHook([this](const char* decision) {
      ++result_.decisions[decision];
      if (spec_.audit) {
        auditor_->AuditNow(decision);
      }
    });
    engine_->checker().SetTimeoutObserver([this](uint64_t container_id) {
      // One dump per distinct victim: the checker can re-detect the same runaway policy on
      // consecutive wakeups before the executor reaches its next command fetch.
      if (killed_.insert(container_id).second && recorder_ != nullptr) {
        recorder_->Dump("checker-kill: container " + std::to_string(container_id));
      }
    });
  }

  ScenarioResult Run() {
    result_.name = spec_.name;
    SetUpTenants();
    for (int step = 0; step < spec_.steps; ++step) {
      ApplyInjections(step);
      for (TenantState& t : tenants_) {
        if (!t.arrived && t.spec.arrival_step == step) {
          Spawn(t);
        }
        if (t.arrived && !t.done && t.spec.departure_step == step) {
          Depart(t);
        }
      }
      for (TenantState& t : tenants_) {
        RunTenantSlice(t);
      }
      for (BackgroundState& b : background_) {
        RunBackgroundSlice(b);
      }
    }
    Finish();
    return std::move(result_);
  }

 private:
  void SetUpTenants() {
    uint64_t ordinal = 0;
    for (const TenantSpec& spec : spec_.tenants) {
      TenantState t;
      t.spec = spec;
      t.result.name = spec.name;
      t.source = MaterializeSource(spec, spec_.seed, ordinal++);
      t.region_pages = std::max(spec.pages, t.source->region_pages());
      tenants_.push_back(std::move(t));
    }
    // The fault-injection layer materializes its loop/flusher tenants up front so the
    // schedule (and therefore the fingerprint) is fixed by the spec alone.
    int injected = 0;
    for (const InjectionSpec& inj : spec_.injections) {
      TenantSpec spec;
      if (inj.kind == InjectionKind::kPolicyLoop) {
        spec.name = "inject-loop-" + std::to_string(injected++);
        spec.policy = PolicyKind::kLooping;
        spec.pattern = PatternKind::kSequential;
        spec.write_fraction = 0.0;
      } else if (inj.kind == InjectionKind::kReserveStarvation) {
        spec.name = "inject-flusher-" + std::to_string(injected++);
        spec.policy = PolicyKind::kGreedy;
        spec.pattern = PatternKind::kBursty;
        spec.write_fraction = 0.95;
      } else {
        continue;
      }
      spec.pages = inj.pages;
      spec.min_frames = inj.min_frames;
      spec.accesses = inj.accesses;
      spec.arrival_step = inj.at_step;
      TenantState t;
      t.spec = spec;
      t.result.name = spec.name;
      t.result.injected = true;
      t.source = MaterializeSource(spec, spec_.seed, ordinal++);
      t.region_pages = std::max(spec.pages, t.source->region_pages());
      tenants_.push_back(std::move(t));
    }
    for (const BackgroundSpec& spec : spec_.background) {
      BackgroundState b;
      b.spec = spec;
      b.result.name = spec.name;
      uint64_t seed = TenantSeed(spec_.seed, ordinal++);
      if (spec.workload.set()) {
        b.source = spec.workload.Instantiate(seed);
      } else {
        workloads::SyntheticSpec synth;
        synth.kind = workloads::PatternKind::kUniform;
        synth.pages = spec.pages;
        synth.accesses = spec.accesses;
        synth.write_fraction = spec.write_fraction;
        b.source = workloads::MakePatternSource(synth, seed, spec.name);
      }
      b.task = kernel_->CreateTask(spec.name);
      uint64_t region_pages = std::max(spec.pages, b.source->region_pages());
      b.addr = kernel_->VmAllocate(b.task, region_pages * kPageSize);
      background_.push_back(std::move(b));
    }
  }

  void Spawn(TenantState& t) {
    t.arrived = true;
    t.task = kernel_->CreateTask(t.spec.name);
    core::HipecOptions options;
    options.min_frames = t.spec.min_frames;
    options.timeout_ns = t.spec.timeout_ns;
    options.request_size = t.spec.request_size;
    options.free_target = 4;
    options.inactive_target = 8;
    options.reserved_target = 0;
    if (t.spec.policy == PolicyKind::kTwoQueue) {
      options.user_queue_count = 2;
    }
    t.region = engine_->VmAllocateHipec(t.task, t.region_pages * kPageSize,
                                        MakePolicy(t.spec.policy), options);
    t.result.admitted = t.region.ok;
    if (t.region.ok) {
      t.addr = t.region.addr;
      t.container_id = t.region.container->id();
    } else {
      // Admission denied: "can either run as a non-specific application or terminate and
      // retry later" (§4.3.1). The scenario keeps it running non-specific.
      t.addr = kernel_->VmAllocate(t.task, t.region_pages * kPageSize);
    }
  }

  void Depart(TenantState& t) {
    Snapshot(t);
    kernel_->TerminateTask(t.task, "scenario departure");
    t.result.terminated = true;
    t.done = true;
  }

  // Copies the container's live counters into the result. Called after every access so the
  // numbers survive the container being freed by a kill or teardown.
  void Snapshot(TenantState& t) {
    if (!t.region.ok || t.result.torn_down || t.task == nullptr || t.task->terminated()) {
      return;
    }
    core::Container* c = t.region.container;
    t.result.faults_handled = c->faults_handled;
    t.result.commands_executed = c->commands_executed;
    t.result.requests_made = c->requests_made;
    t.result.requests_rejected = c->requests_rejected;
    t.result.frames_force_reclaimed = c->frames_force_reclaimed;
    t.result.frames_reclaimed_from = c->frames_reclaimed_from;
    t.result.frames_peak = std::max(t.result.frames_peak, c->allocated_frames);
  }

  void RunTenantSlice(TenantState& t) {
    if (!t.arrived || t.done) {
      return;
    }
    const sim::Nanos slice_start_ns = kernel_->clock().now();
    workloads::Access access;
    for (size_t i = 0; i < spec_.slice_accesses && t.source->pos() < t.source->size(); ++i) {
      if (t.task->terminated()) {
        break;
      }
      t.source->Next(&access);
      if (!kernel_->Touch(t.task, t.addr + access.vpage * kPageSize, access.is_write())) {
        // Terminated mid-access (checker kill or policy error); rewind so the counter
        // semantics match the pre-source engine (the failed access was never issued).
        t.source->Seek(t.source->pos() - 1);
        break;
      }
      ++t.result.accesses_done;
      Snapshot(t);
    }
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbSliceNs, kernel_->clock().now() - slice_start_ns);
    }
    if (t.task->terminated()) {
      t.result.terminated = true;
      t.done = true;
    } else if (t.source->pos() == t.source->size()) {
      t.result.completed = true;
      t.done = true;
    }
  }

  void RunBackgroundSlice(BackgroundState& b) {
    if (b.done) {
      return;
    }
    workloads::Access access;
    for (size_t i = 0; i < spec_.slice_accesses && b.source->pos() < b.source->size(); ++i) {
      b.source->Next(&access);
      if (!kernel_->Touch(b.task, b.addr + access.vpage * kPageSize, access.is_write())) {
        b.source->Seek(b.source->pos() - 1);
        break;
      }
      ++b.result.accesses_done;
    }
    if (b.task->terminated()) {
      b.done = true;
    } else if (b.source->pos() == b.source->size()) {
      b.result.completed = true;
      b.done = true;
    }
  }

  void ApplyInjections(int step) {
    // Clears first, so a spike re-applied at its own clear step wins.
    if (spike_clear_step_ == step) {
      kernel_->disk().InjectReadLatency(0);
      spike_clear_step_ = -1;
    }
    for (const InjectionSpec& inj : spec_.injections) {
      if (inj.at_step != step) {
        continue;
      }
      switch (inj.kind) {
        case InjectionKind::kDiskLatencySpike:
          kernel_->disk().InjectReadLatency(inj.extra_latency_ns);
          spike_clear_step_ = step + inj.duration_steps;
          break;
        case InjectionKind::kTeardown:
          if (inj.tenant_index < tenants_.size()) {
            TenantState& t = tenants_[inj.tenant_index];
            if (t.arrived && !t.done && t.region.ok && !t.task->terminated()) {
              Snapshot(t);
              kernel_->VmDeallocate(t.task, t.addr);
              t.result.torn_down = true;
              t.done = true;
            }
          }
          break;
        case InjectionKind::kPolicyLoop:
        case InjectionKind::kReserveStarvation:
          break;  // materialized as tenants in SetUpTenants
      }
    }
  }

  void Finish() {
    for (TenantState& t : tenants_) {
      if (t.arrived && t.task != nullptr && !t.task->terminated()) {
        Snapshot(t);
        kernel_->TerminateTask(t.task, "scenario end");
      }
      t.result.killed_by_checker = killed_.contains(t.container_id) && t.container_id != 0;
      result_.tenants.push_back(t.result);
    }
    for (BackgroundState& b : background_) {
      if (!b.task->terminated()) {
        kernel_->TerminateTask(b.task, "scenario end");
      }
      result_.background.push_back(b.result);
    }
    kernel_->disk().DrainWrites();
    if (spec_.audit) {
      auditor_->AuditNow("scenario-end");
    }
    result_.virtual_ns = kernel_->clock().now();
    result_.audits_run = auditor_->audits_run();
    result_.checker_kills = static_cast<int64_t>(killed_.size());
    result_.burst_watermark_final = engine_->manager().partition_burst();
    result_.trace_dropped = kernel_->tracer().dropped();
    result_.flight_recorder_dumps = recorder_ != nullptr ? recorder_->dumps() : 0;
    if (!spec_.chrome_trace_path.empty()) {
      std::vector<obs::ChromeTraceTrack> tracks;
      for (const TenantState& t : tenants_) {
        if (t.task != nullptr) {
          tracks.push_back(obs::ChromeTraceTrack{t.task->id(), t.container_id, t.spec.name});
        }
      }
      for (const BackgroundState& b : background_) {
        tracks.push_back(obs::ChromeTraceTrack{b.task->id(), 0, b.spec.name});
      }
      std::string error;
      if (!obs::WriteChromeTraceFile(spec_.chrome_trace_path, kernel_->tracer().Snapshot(),
                                     tracks, spec_.name, &error)) {
        std::fprintf(stderr, "[scenario] chrome trace export failed: %s\n", error.c_str());
      }
    }
  }

  ScenarioSpec spec_;
  std::unique_ptr<mach::Kernel> kernel_;
  std::unique_ptr<core::HipecEngine> engine_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  obs::ProbeSet probes_;
  std::vector<TenantState> tenants_;
  std::vector<BackgroundState> background_;
  std::unordered_set<uint64_t> killed_;
  int spike_clear_step_ = -1;
  ScenarioResult result_;
};

}  // namespace

std::unique_ptr<workloads::WorkloadSource> MaterializeSource(const TenantSpec& tenant,
                                                             uint64_t scenario_seed,
                                                             uint64_t tenant_ordinal) {
  uint64_t seed = TenantSeed(scenario_seed, tenant_ordinal);
  if (tenant.workload.set()) {
    return tenant.workload.Instantiate(seed);
  }
  workloads::SyntheticSpec synth;
  synth.kind = tenant.pattern;
  synth.pages = tenant.pages;
  synth.accesses = tenant.accesses;
  synth.write_fraction = tenant.write_fraction;
  synth.zipf_theta = tenant.zipf_theta;
  synth.stride = tenant.stride;
  synth.hot_pages = tenant.hot_pages;
  synth.hot_fraction = tenant.hot_fraction;
  synth.burst_phase = tenant.burst_phase;
  synth.cyclic_loops = tenant.cyclic_loops;
  return workloads::MakePatternSource(synth, seed, tenant.name);
}

std::vector<std::pair<uint64_t, bool>> MaterializeTrace(const TenantSpec& tenant,
                                                        uint64_t scenario_seed,
                                                        uint64_t tenant_ordinal) {
  std::unique_ptr<workloads::WorkloadSource> source =
      MaterializeSource(tenant, scenario_seed, tenant_ordinal);
  std::vector<std::pair<uint64_t, bool>> trace;
  trace.reserve(source->size());
  workloads::Access access;
  while (source->Next(&access)) {
    trace.emplace_back(access.vpage, access.is_write());
  }
  return trace;
}

std::string ScenarioResult::Fingerprint() const {
  std::ostringstream os;
  os << name << "|vt=" << virtual_ns << "|kills=" << checker_kills
     << "|burst=" << burst_watermark_final;
  for (const TenantResult& t : tenants) {
    os << "|" << t.name << ":adm=" << t.admitted << ",done=" << t.completed
       << ",term=" << t.terminated << ",kill=" << t.killed_by_checker
       << ",torn=" << t.torn_down << ",acc=" << t.accesses_done << ",flt=" << t.faults_handled
       << ",cmd=" << t.commands_executed << ",req=" << t.requests_made
       << ",rej=" << t.requests_rejected << ",forced=" << t.frames_force_reclaimed
       << ",recl=" << t.frames_reclaimed_from << ",peak=" << t.frames_peak;
  }
  for (const BackgroundResult& b : background) {
    os << "|" << b.name << ":acc=" << b.accesses_done << ",done=" << b.completed;
  }
  for (const auto& [decision, count] : decisions) {
    os << "|" << decision << "=" << count;
  }
  return os.str();
}

ScenarioResult RunScenario(const ScenarioSpec& spec) {
  ScenarioRun run(spec);
  return run.Run();
}

}  // namespace hipec::scenario
