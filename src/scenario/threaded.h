// The real-threads scenario driver: N tenant threads faulting concurrently against one
// kernel built in sim::ExecMode::kRealThreads — real std::threads, the lock hierarchy armed
// (DESIGN.md §10), the security checker running as an actual thread, and host time instead of
// the virtual clock.
//
// This is the concurrency counterpart of scenario.h's deterministic round-robin driver, and
// deliberately simpler: no background tasks, no per-decision audit hook
// (manager decisions complete thousands of times per second across threads). Instead the
// calling thread periodically stops the world (kernel.world() exclusive, which waits out
// every in-flight fault) and runs the same AuditFrameInvariants pass the deterministic
// auditor uses — conservation, no-double-grant, FAFR order, and reserve solvency proven
// against a quiesced machine while tenants hammer it in between.
//
// Nothing here is deterministic except the per-tenant access traces (materialized from the
// spec seed exactly as the deterministic driver does): interleaving, grant/reject outcomes,
// and checker kills depend on the host scheduler. Throughput (faults_per_sec) is the point —
// bench_parallel runs this at 1/2/4/8 threads to measure sharded-pool scaling.
#ifndef HIPEC_SCENARIO_THREADED_H_
#define HIPEC_SCENARIO_THREADED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hipec/frame_manager.h"
#include "scenario/scenario.h"

namespace hipec::scenario {

struct ThreadedScenarioSpec {
  std::string name;
  // Kernel shape.
  uint64_t total_frames = 4096;
  uint64_t kernel_reserved_frames = 256;
  uint64_t seed = 0x7EA15;
  core::FrameManagerConfig manager;
  // Shards in the global free-frame pool; 0 uses ShardedFramePool's default.
  size_t free_pool_shards = 0;
  // Stop-the-world audits while tenants run. audit_interval_ms spaces them; a final audit
  // always runs after the workers join (even with audit = false the final one runs, so every
  // threaded run ends with a proven-consistent machine).
  bool audit = true;
  int audit_interval_ms = 5;
  // One worker thread per tenant. Reuses the deterministic driver's TenantSpec; the
  // scheduling fields (arrival_step/departure_step) are ignored — every tenant starts
  // immediately and runs its whole trace.
  std::vector<TenantSpec> tenants;
  // Fault injections, reinterpreted for wall-clock execution: at_step and duration_steps
  // are milliseconds since the workers started. kDiskLatencySpike and kTeardown perturb the
  // running system from the audit/control loop; kPolicyLoop and kReserveStarvation
  // materialize an injected tenant at fire time, running on a freshly spawned thread.
  std::vector<InjectionSpec> injections;
};

struct ThreadedScenarioResult {
  std::string name;
  size_t threads = 0;
  int64_t audits_run = 0;
  int64_t checker_wakeups = 0;
  int64_t checker_kills = 0;
  // Aggregate work: every access issued by every worker, and the engine's count of faults
  // that went through the HiPEC fault path.
  uint64_t total_accesses = 0;
  int64_t total_faults = 0;
  double wall_seconds = 0.0;
  double faults_per_sec = 0.0;
  double accesses_per_sec = 0.0;
  // Reuses the deterministic driver's per-tenant outcome struct (snapshotted under the
  // owning task's lock, so the numbers are exact even with reclamation running).
  std::vector<TenantResult> tenants;
};

// Builds a real-threads kernel, registers every tenant, runs one worker thread per tenant to
// trace completion, audits, and tears down. Throws sim::CheckFailure if any stop-the-world
// audit finds an invariant violation.
ThreadedScenarioResult RunThreadedScenario(const ThreadedScenarioSpec& spec);

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_THREADED_H_
