#include "policies/oracle.h"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "sim/check.h"

namespace hipec::policies {

OracleResult SimulateReplacement(const std::vector<uint64_t>& trace, size_t frames,
                                 OraclePolicy policy) {
  HIPEC_CHECK(frames > 0);
  OracleResult result;
  // Resident pages in *fault-arrival* order (FIFO/clock order); recency tracked separately.
  std::list<uint64_t> arrival;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where;
  std::unordered_map<uint64_t, uint64_t> last_use;
  std::unordered_map<uint64_t, bool> referenced;
  uint64_t tick = 0;

  for (uint64_t page : trace) {
    ++tick;
    auto hit = where.find(page);
    if (hit != where.end()) {
      last_use[page] = tick;
      referenced[page] = true;
      continue;
    }
    ++result.faults;
    if (where.size() >= frames) {
      uint64_t victim;
      switch (policy) {
        case OraclePolicy::kFifo:
          victim = arrival.front();
          break;
        case OraclePolicy::kLru: {
          victim = arrival.front();
          uint64_t best = last_use[victim];
          for (uint64_t p : arrival) {
            if (last_use[p] < best) {
              best = last_use[p];
              victim = p;
            }
          }
          break;
        }
        case OraclePolicy::kMru: {
          victim = arrival.front();
          uint64_t best = last_use[victim];
          for (uint64_t p : arrival) {
            if (last_use[p] >= best) {
              best = last_use[p];
              victim = p;
            }
          }
          break;
        }
        case OraclePolicy::kClock: {
          // Rotate: referenced pages get a second chance at the tail with the bit cleared.
          for (;;) {
            uint64_t head = arrival.front();
            if (!referenced[head]) {
              victim = head;
              break;
            }
            referenced[head] = false;
            arrival.pop_front();
            arrival.push_back(head);
            where[head] = std::prev(arrival.end());
          }
          break;
        }
      }
      arrival.erase(where[victim]);
      where.erase(victim);
      last_use.erase(victim);
      referenced.erase(victim);
      result.evictions.push_back(victim);
    }
    arrival.push_back(page);
    where[page] = std::prev(arrival.end());
    last_use[page] = tick;
    referenced[page] = true;  // installed referenced, as the kernel's InstallPage does
  }
  return result;
}

int64_t JoinFaultsLru(int64_t outer_bytes, int64_t memory_bytes, int64_t loops,
                      int64_t page_size) {
  if (outer_bytes <= memory_bytes) {
    return outer_bytes / page_size;  // only the first scan faults
  }
  return outer_bytes * loops / page_size;
}

int64_t JoinFaultsMru(int64_t outer_bytes, int64_t memory_bytes, int64_t loops,
                      int64_t page_size) {
  if (outer_bytes <= memory_bytes) {
    return outer_bytes / page_size;
  }
  return ((outer_bytes - memory_bytes) * (loops - 1) + outer_bytes) / page_size;
}

}  // namespace hipec::policies
