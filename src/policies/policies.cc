#include "policies/policies.h"

#include "hipec/builder.h"

namespace hipec::policies {

using core::ArithOp;
using core::CompOp;
using core::EventBuilder;
using core::PageBit;
using core::PolicyProgram;
namespace ops = hipec::core::std_ops;

std::vector<core::Instruction> StandardReclaimEvent() {
  EventBuilder b;
  auto loop = b.NewLabel();
  auto rel_free = b.NewLabel();
  auto rel_inactive = b.NewLabel();
  auto rel_active = b.NewLabel();
  auto dec = b.NewLabel();
  auto exit = b.NewLabel();

  b.Bind(loop);
  b.LoadImm(ops::kScratch0, 0);
  b.Comp(ops::kReclaimCount, ops::kScratch0, CompOp::kGt);
  b.JumpIfFalse(exit);  // count <= 0: done
  // Prefer clean free frames, then inactive, then active.
  b.EmptyQ(ops::kFreeQueue);
  b.JumpIfFalse(rel_free);  // not empty -> release from free
  b.EmptyQ(ops::kInactiveQueue);
  b.JumpIfFalse(rel_inactive);
  b.EmptyQ(ops::kActiveQueue);
  b.JumpIfFalse(rel_active);
  b.ClearCondition();
  b.JumpIfFalse(exit);  // nothing left to give

  b.Bind(rel_free);
  b.Release(ops::kFreeQueue);
  b.JumpIfFalse(exit);  // release failed
  b.JumpIfFalse(dec);   // release succeeded (prior Jump cleared the flag)

  b.Bind(rel_inactive);
  b.Release(ops::kInactiveQueue);
  b.JumpIfFalse(exit);
  b.JumpIfFalse(dec);

  b.Bind(rel_active);
  b.Release(ops::kActiveQueue);
  b.JumpIfFalse(exit);
  b.JumpIfFalse(dec);

  b.Bind(dec);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(ops::kReclaimCount, ops::kScratch1, ArithOp::kSub);
  b.JumpIfFalse(loop);

  b.Bind(exit);
  b.Return(0);
  return b.Build();
}

namespace {

// PageFault prologue shared by every policy: serve from the private free list when it is
// above reserved_target; otherwise fall through to the policy-specific eviction code.
void EmitFreeListFastPath(EventBuilder& b, EventBuilder::Label evict) {
  b.Comp(ops::kFreeCount, ops::kReservedTarget, CompOp::kGt);
  b.JumpIfFalse(evict);
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.Return(ops::kPage);
}

// Common epilogue for eviction paths: flush the victim if dirty, then return it.
void EmitFlushAndReturn(EventBuilder& b) {
  auto clean = b.NewLabel();
  b.Mod(ops::kPage);
  b.JumpIfFalse(clean);  // not modified
  b.Flush(ops::kPage);   // exchange for a clean frame (asynchronous write-back)
  b.Bind(clean);
  b.Return(ops::kPage);
}

core::PolicyProgram OneEvictionPolicy(core::Opcode complex_op, bool take_tail,
                                      CommandStyle style) {
  PolicyProgram program;
  EventBuilder b;
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, evict);
  b.Bind(evict);
  if (style == CommandStyle::kComplex) {
    switch (complex_op) {
      case core::Opcode::kFifo:
        b.Fifo(ops::kActiveQueue, ops::kPage);
        break;
      case core::Opcode::kLru:
        b.Lru(ops::kActiveQueue, ops::kPage);
        break;
      default:
        b.Mru(ops::kActiveQueue, ops::kPage);
        break;
    }
  } else if (take_tail) {
    b.DeQueueTail(ops::kPage, ops::kActiveQueue);
  } else {
    b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  }
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

}  // namespace

core::PolicyProgram MruPolicy(CommandStyle style) {
  // The engine appends faulted pages to the active-queue tail, so with a sequential access
  // pattern the tail is the most recently used page; kSimple is then exact.
  return OneEvictionPolicy(core::Opcode::kMru, /*take_tail=*/true, style);
}

core::PolicyProgram LruPolicy(CommandStyle style) {
  return OneEvictionPolicy(core::Opcode::kLru, /*take_tail=*/false, style);
}

core::PolicyProgram FifoPolicy(CommandStyle style) {
  return OneEvictionPolicy(core::Opcode::kFifo, /*take_tail=*/false, style);
}

core::PolicyProgram ClockPolicy() {
  PolicyProgram program;
  EventBuilder b;
  auto scan = b.NewLabel();
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, scan);
  // Rotate the clock hand: referenced pages get their bit cleared and go to the tail;
  // the first unreferenced page is the victim. Terminates within two revolutions.
  b.Bind(scan);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, ops::kActiveQueue);
  b.JumpIfFalse(scan);
  b.Bind(evict);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

core::PolicyProgram TwoQueuePolicy() {
  // Three stages (pages install with their reference bit set, so detecting a *re*-reference
  // needs a window in which the bit was cleared — the same trick as Mach's active/inactive
  // split):
  //   A1  = the engine-fed active queue: fresh faults. Drained into A1m with ref cleared.
  //   A1m = probation (user queue 0): pages evicted from here if not re-referenced;
  //         re-referenced pages are promoted.
  //   Am  = protected (user queue 1): the scan-resistant hot set, clock-rotated.
  const uint8_t kA1m = ops::kUserBase;
  const uint8_t kAm = ops::kUserBase + 1;
  PolicyProgram program;
  EventBuilder b;
  auto scan = b.NewLabel();
  auto move_a1 = b.NewLabel();
  auto check_a1m = b.NewLabel();
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, scan);

  b.Bind(scan);
  b.EmptyQ(ops::kActiveQueue);
  b.JumpIfFalse(move_a1);  // A1 non-empty: demote its head into probation
  b.EmptyQ(kA1m);
  b.JumpIfFalse(check_a1m);  // probation non-empty: judge its head
  // Only the protected queue is left: clock within Am.
  b.DeQueueHead(ops::kPage, kAm);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, kAm);
  b.JumpIfFalse(scan);

  b.Bind(move_a1);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  b.SetBit(ops::kPage, PageBit::kReference, false);  // open the re-reference window
  b.EnQueueTail(ops::kPage, kA1m);
  b.JumpIfFalse(scan);

  b.Bind(check_a1m);
  b.DeQueueHead(ops::kPage, kA1m);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);  // never touched again: a one-shot (scan) page
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, kAm);  // promotion into the protected set
  b.JumpIfFalse(scan);

  b.Bind(evict);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

core::HipecOptions TwoQueueOptions() {
  core::HipecOptions options;
  options.user_queue_count = 2;  // A1m at kUserBase, Am at kUserBase+1
  return options;
}

core::PolicyProgram FifoSecondChancePolicy() {
  PolicyProgram program;

  // --- PageFault (Table 2, upper listing) -----------------------------------------------------
  {
    EventBuilder b;
    auto lack = b.NewLabel();
    auto retry = b.NewLabel();
    b.Bind(retry);
    b.Comp(ops::kFreeCount, ops::kReservedTarget, CompOp::kGt);
    b.JumpIfFalse(lack);  // "/* else */ Jump to (CC==5)"
    b.DeQueueHead(ops::kPage, ops::kFreeQueue);
    b.Return(ops::kPage);
    b.Bind(lack);
    b.Activate(core::kFirstUserEvent);  // "Activate Lack_free_frame event"
    b.JumpIfFalse(retry);               // unconditional: Activate cleared the flag
    program.SetEvent(core::kEventPageFault, b.Build());
  }

  // --- Lack_Free_Frame (Table 2, lower listing / Figure 4 pseudo-code) ------------------------
  {
    EventBuilder b;
    auto refill_loop = b.NewLabel();
    auto refill_body = b.NewLabel();
    auto free_loop = b.NewLabel();
    auto free_body = b.NewLabel();
    auto not_referenced = b.NewLabel();
    auto clean = b.NewLabel();
    auto exit = b.NewLabel();

    // while (inactive_count < inactive_target) { move active head -> inactive tail, reset ref }
    b.Bind(refill_loop);
    b.Comp(ops::kInactiveCount, ops::kInactiveTarget, CompOp::kLt);
    b.JumpIfFalse(free_loop);
    b.EmptyQ(ops::kActiveQueue);
    b.JumpIfFalse(refill_body);  // active queue non-empty
    b.JumpIfFalse(free_loop);    // active queue drained (flag cleared by the jump above)
    b.Bind(refill_body);
    b.DeQueueHead(ops::kPage, ops::kActiveQueue);
    b.SetBit(ops::kPage, PageBit::kReference, false);
    b.EnQueueTail(ops::kPage, ops::kInactiveQueue);
    b.JumpIfFalse(refill_loop);

    // while (free_count < free_target) { second-chance scan of the inactive queue }
    b.Bind(free_loop);
    b.Comp(ops::kFreeCount, ops::kFreeTarget, CompOp::kLt);
    b.JumpIfFalse(exit);
    b.EmptyQ(ops::kInactiveQueue);
    b.JumpIfFalse(free_body);  // inactive queue non-empty
    b.JumpIfFalse(exit);
    b.Bind(free_body);
    b.DeQueueHead(ops::kPage, ops::kInactiveQueue);
    b.Ref(ops::kPage);
    b.JumpIfFalse(not_referenced);
    // Referenced while inactive: second chance.
    b.EnQueueTail(ops::kPage, ops::kActiveQueue);
    b.SetBit(ops::kPage, PageBit::kReference, false);
    b.JumpIfFalse(free_loop);
    b.Bind(not_referenced);
    b.Mod(ops::kPage);
    b.JumpIfFalse(clean);
    b.Flush(ops::kPage);
    b.Bind(clean);
    b.EnQueueHead(ops::kPage, ops::kFreeQueue);
    b.JumpIfFalse(free_loop);

    b.Bind(exit);
    b.Return(0);
    program.SetEvent(core::kFirstUserEvent, b.Build());
  }

  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

}  // namespace hipec::policies
