#include "policies/policies.h"

#include "hipec/builder.h"

namespace hipec::policies {

using core::ArithOp;
using core::CompOp;
using core::EventBuilder;
using core::PageBit;
using core::PolicyProgram;
namespace ops = hipec::core::std_ops;

std::vector<core::Instruction> StandardReclaimEvent() {
  EventBuilder b;
  auto loop = b.NewLabel();
  auto rel_free = b.NewLabel();
  auto rel_inactive = b.NewLabel();
  auto rel_active = b.NewLabel();
  auto dec = b.NewLabel();
  auto exit = b.NewLabel();

  b.Bind(loop);
  b.LoadImm(ops::kScratch0, 0);
  b.Comp(ops::kReclaimCount, ops::kScratch0, CompOp::kGt);
  b.JumpIfFalse(exit);  // count <= 0: done
  // Prefer clean free frames, then inactive, then active.
  b.EmptyQ(ops::kFreeQueue);
  b.JumpIfFalse(rel_free);  // not empty -> release from free
  b.EmptyQ(ops::kInactiveQueue);
  b.JumpIfFalse(rel_inactive);
  b.EmptyQ(ops::kActiveQueue);
  b.JumpIfFalse(rel_active);
  b.ClearCondition();
  b.JumpIfFalse(exit);  // nothing left to give

  b.Bind(rel_free);
  b.Release(ops::kFreeQueue);
  b.JumpIfFalse(exit);  // release failed
  b.JumpIfFalse(dec);   // release succeeded (prior Jump cleared the flag)

  b.Bind(rel_inactive);
  b.Release(ops::kInactiveQueue);
  b.JumpIfFalse(exit);
  b.JumpIfFalse(dec);

  b.Bind(rel_active);
  b.Release(ops::kActiveQueue);
  b.JumpIfFalse(exit);
  b.JumpIfFalse(dec);

  b.Bind(dec);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(ops::kReclaimCount, ops::kScratch1, ArithOp::kSub);
  b.JumpIfFalse(loop);

  b.Bind(exit);
  b.Return(0);
  return b.Build();
}

namespace {

// PageFault prologue shared by every policy: serve from the private free list when it is
// above reserved_target; otherwise fall through to the policy-specific eviction code.
void EmitFreeListFastPath(EventBuilder& b, EventBuilder::Label evict) {
  b.Comp(ops::kFreeCount, ops::kReservedTarget, CompOp::kGt);
  b.JumpIfFalse(evict);
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.Return(ops::kPage);
}

// Common epilogue for eviction paths: flush the victim if dirty, then return it.
void EmitFlushAndReturn(EventBuilder& b) {
  auto clean = b.NewLabel();
  b.Mod(ops::kPage);
  b.JumpIfFalse(clean);  // not modified
  b.Flush(ops::kPage);   // exchange for a clean frame (asynchronous write-back)
  b.Bind(clean);
  b.Return(ops::kPage);
}

core::PolicyProgram OneEvictionPolicy(core::Opcode complex_op, bool take_tail,
                                      CommandStyle style) {
  PolicyProgram program;
  EventBuilder b;
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, evict);
  b.Bind(evict);
  if (style == CommandStyle::kComplex) {
    switch (complex_op) {
      case core::Opcode::kFifo:
        b.Fifo(ops::kActiveQueue, ops::kPage);
        break;
      case core::Opcode::kLru:
        b.Lru(ops::kActiveQueue, ops::kPage);
        break;
      default:
        b.Mru(ops::kActiveQueue, ops::kPage);
        break;
    }
  } else if (take_tail) {
    b.DeQueueTail(ops::kPage, ops::kActiveQueue);
  } else {
    b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  }
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

}  // namespace

core::PolicyProgram MruPolicy(CommandStyle style) {
  // The engine appends faulted pages to the active-queue tail, so with a sequential access
  // pattern the tail is the most recently used page; kSimple is then exact.
  return OneEvictionPolicy(core::Opcode::kMru, /*take_tail=*/true, style);
}

core::PolicyProgram LruPolicy(CommandStyle style) {
  return OneEvictionPolicy(core::Opcode::kLru, /*take_tail=*/false, style);
}

core::PolicyProgram FifoPolicy(CommandStyle style) {
  return OneEvictionPolicy(core::Opcode::kFifo, /*take_tail=*/false, style);
}

core::PolicyProgram ClockPolicy() {
  PolicyProgram program;
  EventBuilder b;
  auto scan = b.NewLabel();
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, scan);
  // Rotate the clock hand: referenced pages get their bit cleared and go to the tail;
  // the first unreferenced page is the victim. Terminates within two revolutions.
  b.Bind(scan);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, ops::kActiveQueue);
  b.JumpIfFalse(scan);
  b.Bind(evict);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

core::PolicyProgram TwoQueuePolicy() {
  // Three stages (pages install with their reference bit set, so detecting a *re*-reference
  // needs a window in which the bit was cleared — the same trick as Mach's active/inactive
  // split):
  //   A1  = the engine-fed active queue: fresh faults. Drained into A1m with ref cleared.
  //   A1m = probation (user queue 0): pages evicted from here if not re-referenced;
  //         re-referenced pages are promoted.
  //   Am  = protected (user queue 1): the scan-resistant hot set, clock-rotated.
  const uint8_t kA1m = ops::kUserBase;
  const uint8_t kAm = ops::kUserBase + 1;
  PolicyProgram program;
  EventBuilder b;
  auto scan = b.NewLabel();
  auto move_a1 = b.NewLabel();
  auto check_a1m = b.NewLabel();
  auto evict = b.NewLabel();
  EmitFreeListFastPath(b, scan);

  b.Bind(scan);
  b.EmptyQ(ops::kActiveQueue);
  b.JumpIfFalse(move_a1);  // A1 non-empty: demote its head into probation
  b.EmptyQ(kA1m);
  b.JumpIfFalse(check_a1m);  // probation non-empty: judge its head
  // Only the protected queue is left: clock within Am.
  b.DeQueueHead(ops::kPage, kAm);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, kAm);
  b.JumpIfFalse(scan);

  b.Bind(move_a1);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  b.SetBit(ops::kPage, PageBit::kReference, false);  // open the re-reference window
  b.EnQueueTail(ops::kPage, kA1m);
  b.JumpIfFalse(scan);

  b.Bind(check_a1m);
  b.DeQueueHead(ops::kPage, kA1m);
  b.Ref(ops::kPage);
  b.JumpIfFalse(evict);  // never touched again: a one-shot (scan) page
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.EnQueueTail(ops::kPage, kAm);  // promotion into the protected set
  b.JumpIfFalse(scan);

  b.Bind(evict);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

core::HipecOptions TwoQueueOptions() {
  core::HipecOptions options;
  options.user_queue_count = 2;  // A1m at kUserBase, Am at kUserBase+1
  return options;
}

core::PolicyProgram AwrpPolicy() {
  PolicyProgram program;
  EventBuilder b;
  auto evict = b.NewLabel();
  auto loop = b.NewLabel();
  auto select = b.NewLabel();
  auto unreferenced = b.NewLabel();
  auto store = b.NewLabel();
  EmitFreeListFastPath(b, evict);

  // One full rotation of the active queue per eviction: kScratch0 counts it down so pages
  // re-enqueued at the tail are not revisited.
  b.Bind(evict);
  b.Arith(ops::kScratch0, ops::kActiveCount, ArithOp::kMov);
  b.Bind(loop);
  b.LoadImm(ops::kScratch1, 0);
  b.Comp(ops::kScratch0, ops::kScratch1, CompOp::kGt);
  b.JumpIfFalse(select);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  // Unpack: the word is score * 1024 + last rotation's queue position (see the store
  // below); the position digit is bookkeeping, only the score ages and earns rewards.
  b.PageWordLoad(ops::kPage, ops::kResult);
  b.LoadImm(ops::kScratch1, 32);  // immediates are one byte: 1024 is built as 32 * 32
  b.Arith(ops::kScratch1, ops::kScratch1, ArithOp::kMul);
  b.Arith(ops::kResult, ops::kScratch1, ArithOp::kDiv);
  b.Ref(ops::kPage);
  b.JumpIfFalse(unreferenced);
  // Referenced since the last rotation: reward, and reopen the observation window.
  b.LoadImm(ops::kScratch1, 64);
  b.Arith(ops::kResult, ops::kScratch1, ArithOp::kAdd);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.JumpIfFalse(store);  // unconditional: Arith/SetBit cleared the flag
  b.Bind(unreferenced);
  // Idle: age linearly, flooring at zero so long-cold pages stay minimal (not negative,
  // which would let one ancient page shadow every future cold page).
  b.LoadImm(ops::kScratch1, 0);
  b.Comp(ops::kResult, ops::kScratch1, CompOp::kGt);
  b.JumpIfFalse(store);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(ops::kResult, ops::kScratch1, ArithOp::kSub);
  b.Bind(store);
  // Pack word = score * 1024 + countdown. The countdown runs kActiveCount..1 head-to-tail,
  // so among equal scores the *newest* page holds the smallest word and WeightedSelectMin
  // evicts it first. That tie-break is what makes a cold-start loop converge: without it,
  // equal-score ties resolve toward the queue head (oldest page — exactly the page a cyclic
  // scan needs next) and the policy degenerates to FIFO's 0% hit ratio. With it, one-touch
  // churn recycles the newest frame while the surviving set earns rewards and stabilizes.
  b.LoadImm(ops::kScratch1, 32);
  b.Arith(ops::kScratch1, ops::kScratch1, ArithOp::kMul);
  b.Arith(ops::kResult, ops::kScratch1, ArithOp::kMul);
  b.Arith(ops::kResult, ops::kScratch0, ArithOp::kAdd);
  b.PageWordStore(ops::kPage, ops::kResult);
  b.EnQueueTail(ops::kPage, ops::kActiveQueue);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(ops::kScratch0, ops::kScratch1, ArithOp::kSub);
  b.JumpIfFalse(loop);

  b.Bind(select);
  b.WeightedSelectMin(ops::kActiveQueue, ops::kPage);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

// Perceptron operand layout: SatDotProduct reads the 3 weights and then the 3 features from
// six consecutive integer slots, so the features MUST sit directly after the weights.
namespace perceptron_ops {
constexpr uint8_t kW0 = ops::kUserBase;      // weight: referenced-this-round (learned)
constexpr uint8_t kW1 = ops::kUserBase + 1;  // weight: dirty
constexpr uint8_t kW2 = ops::kUserBase + 2;  // weight: bias
constexpr uint8_t kF0 = ops::kUserBase + 3;  // feature: referenced since the last rotation
constexpr uint8_t kF1 = ops::kUserBase + 4;  // feature: dirty
constexpr uint8_t kF2 = ops::kUserBase + 5;  // feature: constant 1
constexpr uint8_t kPred = ops::kUserBase + 6;   // last rotation's prediction (word parity)
constexpr uint8_t kAccum = ops::kUserBase + 7;  // decayed score accumulator (word >> 1)
constexpr uint8_t kDelta = ops::kUserBase + 8;  // batched weight votes, applied post-rotation
}  // namespace perceptron_ops

core::PolicyProgram PerceptronPolicy() {
  namespace pp = perceptron_ops;
  PolicyProgram program;
  EventBuilder b;
  auto evict = b.NewLabel();
  auto loop = b.NewLabel();
  auto select = b.NewLabel();
  auto f0_zero = b.NewLabel();
  auto f0_done = b.NewLabel();
  auto f1_zero = b.NewLabel();
  auto f1_done = b.NewLabel();
  auto check_down = b.NewLabel();
  auto train_done = b.NewLabel();
  auto no_decay = b.NewLabel();
  auto w0_low_ok = b.NewLabel();
  auto w0_high_ok = b.NewLabel();
  EmitFreeListFastPath(b, evict);

  // One rotation of the active queue per eviction, like AWRP. The per-page word packs the
  // decayed score accumulator above the last prediction bit: word = accum * 2 + pred.
  b.Bind(evict);
  b.LoadImm(pp::kDelta, 0);
  b.Arith(ops::kScratch0, ops::kActiveCount, ArithOp::kMov);
  b.Bind(loop);
  b.LoadImm(ops::kScratch1, 0);
  b.Comp(ops::kScratch0, ops::kScratch1, CompOp::kGt);
  b.JumpIfFalse(select);
  b.DeQueueHead(ops::kPage, ops::kActiveQueue);
  // Unpack: the word is (accum * 2 + pred) * 1024 + rotation position (see the store
  // below). Strip the position digit first, then pred = rest % 2, accum = rest / 2.
  b.PageWordLoad(ops::kPage, ops::kResult);
  b.LoadImm(ops::kScratch1, 32);  // immediates are one byte: 1024 is built as 32 * 32
  b.Arith(ops::kScratch1, ops::kScratch1, ArithOp::kMul);
  b.Arith(ops::kResult, ops::kScratch1, ArithOp::kDiv);
  b.LoadImm(ops::kScratch1, 2);
  b.Arith(pp::kPred, ops::kResult, ArithOp::kMov);
  b.Arith(pp::kPred, ops::kScratch1, ArithOp::kMod);
  b.Arith(pp::kAccum, ops::kResult, ArithOp::kMov);
  b.Arith(pp::kAccum, ops::kScratch1, ArithOp::kDiv);
  // f0 = referenced since the last rotation (clearing the bit reopens the window).
  b.Ref(ops::kPage);
  b.JumpIfFalse(f0_zero);
  b.LoadImm(pp::kF0, 1);
  b.SetBit(ops::kPage, PageBit::kReference, false);
  b.JumpIfFalse(f0_done);
  b.Bind(f0_zero);
  b.LoadImm(pp::kF0, 0);
  b.Bind(f0_done);
  // f1 = dirty, f2 = bias.
  b.Mod(ops::kPage);
  b.JumpIfFalse(f1_zero);
  b.LoadImm(pp::kF1, 1);
  b.JumpIfFalse(f1_done);
  b.Bind(f1_zero);
  b.LoadImm(pp::kF1, 0);
  b.Bind(f1_done);
  b.LoadImm(pp::kF2, 1);
  // Vote on the reuse misprediction, learning rate 1: re-referenced though predicted idle
  // -> +1, predicted busy but idle -> -1. Votes accumulate in kDelta and hit w0 only after
  // the rotation (see the select label): updating w0 mid-rotation hands every later (newer)
  // page a strictly higher score than the page before it, which freezes the accumulators in
  // queue order — the head is the minimum forever and the policy degenerates to exact FIFO.
  // Frozen weights keep same-rotation pages tied, which is what the newest-on-tie position
  // digit below needs to break.
  b.Comp(pp::kF0, pp::kPred, CompOp::kGt);
  b.JumpIfFalse(check_down);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(pp::kDelta, ops::kScratch1, ArithOp::kAdd);
  b.JumpIfFalse(train_done);
  b.Bind(check_down);
  b.Comp(pp::kPred, pp::kF0, CompOp::kGt);
  b.JumpIfFalse(train_done);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(pp::kDelta, ops::kScratch1, ArithOp::kSub);
  b.Bind(train_done);
  // score = w . f (saturating), folded into the linearly decaying accumulator.
  b.SatDotProduct(ops::kResult, pp::kW0, 3);
  b.LoadImm(ops::kScratch1, 0);
  b.Comp(pp::kAccum, ops::kScratch1, CompOp::kGt);
  b.JumpIfFalse(no_decay);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(pp::kAccum, ops::kScratch1, ArithOp::kSub);
  b.Bind(no_decay);
  b.Arith(pp::kAccum, ops::kResult, ArithOp::kAdd);
  // Repack with this round's observation as the next prediction, then append the rotation
  // countdown as the low digit: among equal scores WeightedSelectMin evicts the *newest*
  // page, the same cold-start tie-break AWRP uses (see AwrpPolicy) — without it a cyclic
  // sweep from empty keeps perfect FIFO score order and never converges.
  b.LoadImm(ops::kScratch1, 2);
  b.Arith(pp::kAccum, ops::kScratch1, ArithOp::kMul);
  b.Arith(pp::kAccum, pp::kF0, ArithOp::kAdd);
  b.LoadImm(ops::kScratch1, 32);
  b.Arith(ops::kScratch1, ops::kScratch1, ArithOp::kMul);
  b.Arith(pp::kAccum, ops::kScratch1, ArithOp::kMul);
  b.Arith(pp::kAccum, ops::kScratch0, ArithOp::kAdd);
  b.PageWordStore(ops::kPage, pp::kAccum);
  b.EnQueueTail(ops::kPage, ops::kActiveQueue);
  b.LoadImm(ops::kScratch1, 1);
  b.Arith(ops::kScratch0, ops::kScratch1, ArithOp::kSub);
  b.JumpIfFalse(loop);

  b.Bind(select);
  // Apply the batched weight votes, clamping w0 to [1, 96].
  b.Arith(pp::kW0, pp::kDelta, ArithOp::kAdd);
  b.LoadImm(ops::kScratch1, 1);
  b.Comp(pp::kW0, ops::kScratch1, CompOp::kLt);
  b.JumpIfFalse(w0_low_ok);
  b.Arith(pp::kW0, ops::kScratch1, ArithOp::kMov);
  b.Bind(w0_low_ok);
  b.LoadImm(ops::kScratch1, 96);
  b.Comp(pp::kW0, ops::kScratch1, CompOp::kGt);
  b.JumpIfFalse(w0_high_ok);
  b.Arith(pp::kW0, ops::kScratch1, ArithOp::kMov);
  b.Bind(w0_high_ok);
  b.WeightedSelectMin(ops::kActiveQueue, ops::kPage);
  EmitFlushAndReturn(b);
  program.SetEvent(core::kEventPageFault, b.Build());
  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

core::HipecOptions PerceptronOptions() {
  namespace pp = perceptron_ops;
  core::HipecOptions options;
  options.user_int_count = 9;  // w0..w2, f0..f2, pred, accum, delta
  options.user_int_inits = {
      {pp::kW0, 64, /*read_only=*/false},
      {pp::kW1, 8, /*read_only=*/false},
      {pp::kW2, 1, /*read_only=*/false},
  };
  return options;
}

core::PolicyProgram FifoSecondChancePolicy() {
  PolicyProgram program;

  // --- PageFault (Table 2, upper listing) -----------------------------------------------------
  {
    EventBuilder b;
    auto lack = b.NewLabel();
    auto retry = b.NewLabel();
    b.Bind(retry);
    b.Comp(ops::kFreeCount, ops::kReservedTarget, CompOp::kGt);
    b.JumpIfFalse(lack);  // "/* else */ Jump to (CC==5)"
    b.DeQueueHead(ops::kPage, ops::kFreeQueue);
    b.Return(ops::kPage);
    b.Bind(lack);
    b.Activate(core::kFirstUserEvent);  // "Activate Lack_free_frame event"
    b.JumpIfFalse(retry);               // unconditional: Activate cleared the flag
    program.SetEvent(core::kEventPageFault, b.Build());
  }

  // --- Lack_Free_Frame (Table 2, lower listing / Figure 4 pseudo-code) ------------------------
  {
    EventBuilder b;
    auto refill_loop = b.NewLabel();
    auto refill_body = b.NewLabel();
    auto free_loop = b.NewLabel();
    auto free_body = b.NewLabel();
    auto not_referenced = b.NewLabel();
    auto clean = b.NewLabel();
    auto exit = b.NewLabel();

    // while (inactive_count < inactive_target) { move active head -> inactive tail, reset ref }
    b.Bind(refill_loop);
    b.Comp(ops::kInactiveCount, ops::kInactiveTarget, CompOp::kLt);
    b.JumpIfFalse(free_loop);
    b.EmptyQ(ops::kActiveQueue);
    b.JumpIfFalse(refill_body);  // active queue non-empty
    b.JumpIfFalse(free_loop);    // active queue drained (flag cleared by the jump above)
    b.Bind(refill_body);
    b.DeQueueHead(ops::kPage, ops::kActiveQueue);
    b.SetBit(ops::kPage, PageBit::kReference, false);
    b.EnQueueTail(ops::kPage, ops::kInactiveQueue);
    b.JumpIfFalse(refill_loop);

    // while (free_count < free_target) { second-chance scan of the inactive queue }
    b.Bind(free_loop);
    b.Comp(ops::kFreeCount, ops::kFreeTarget, CompOp::kLt);
    b.JumpIfFalse(exit);
    b.EmptyQ(ops::kInactiveQueue);
    b.JumpIfFalse(free_body);  // inactive queue non-empty
    b.JumpIfFalse(exit);
    b.Bind(free_body);
    b.DeQueueHead(ops::kPage, ops::kInactiveQueue);
    b.Ref(ops::kPage);
    b.JumpIfFalse(not_referenced);
    // Referenced while inactive: second chance.
    b.EnQueueTail(ops::kPage, ops::kActiveQueue);
    b.SetBit(ops::kPage, PageBit::kReference, false);
    b.JumpIfFalse(free_loop);
    b.Bind(not_referenced);
    b.Mod(ops::kPage);
    b.JumpIfFalse(clean);
    b.Flush(ops::kPage);
    b.Bind(clean);
    b.EnQueueHead(ops::kPage, ops::kFreeQueue);
    b.JumpIfFalse(free_loop);

    b.Bind(exit);
    b.Return(0);
    program.SetEvent(core::kFirstUserEvent, b.Build());
  }

  program.SetEvent(core::kEventReclaimFrame, StandardReclaimEvent());
  return program;
}

}  // namespace hipec::policies
