// Reference (oracle) implementations of the replacement policies, independent of the HiPEC
// machinery. The property tests replay the same page trace through an oracle and through the
// full kernel+engine+bytecode stack and require identical fault counts and eviction orders.
#ifndef HIPEC_POLICIES_ORACLE_H_
#define HIPEC_POLICIES_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hipec::policies {

enum class OraclePolicy {
  kFifo,   // evict in fault-arrival order
  kLru,    // evict least recently used
  kMru,    // evict most recently used
  kClock,  // second chance over a circular list (reference bits set on hit and on install)
};

struct OracleResult {
  size_t faults = 0;
  std::vector<uint64_t> evictions;  // page numbers, in eviction order
};

// Replays `trace` (page numbers) against a pool of `frames` physical frames.
OracleResult SimulateReplacement(const std::vector<uint64_t>& trace, size_t frames,
                                 OraclePolicy policy);

// The paper's analytic page-fault formulas for the nested-loops join (§5.3).
//   PF_l = OutLSize * Loop / PageSize
//   PF_m = ((OutLSize - MSize) * (Loop - 1) + OutLSize) / PageSize
// Arguments in bytes; Loop is the number of outer-table scans. When the outer table fits in
// memory (OutLSize <= MSize) both policies fault only on the first scan.
int64_t JoinFaultsLru(int64_t outer_bytes, int64_t memory_bytes, int64_t loops,
                      int64_t page_size = 4096);
int64_t JoinFaultsMru(int64_t outer_bytes, int64_t memory_bytes, int64_t loops,
                      int64_t page_size = 4096);

}  // namespace hipec::policies

#endif  // HIPEC_POLICIES_ORACLE_H_
