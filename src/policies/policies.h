// Ready-made HiPEC policy programs, all using the standard operand layout (operand.h):
//
//   * FifoSecondChancePolicy() — the paper's reference program (Table 2 / Figure 4): Mach's
//     own FIFO-with-second-chance, reimplemented as a user policy. Used by the Table 3
//     overhead experiment.
//   * MruPolicy()              — evict the most recently used page; the right policy for the
//     nested-loops join of §5.3 (Figure 6).
//   * LruPolicy()              — evict the least recently used page; the "popular in
//     conventional operating systems" comparison policy.
//   * FifoPolicy()             — plain FIFO.
//
// Each PageFault event first serves from the private free list and falls back to eviction;
// each program also carries the shared ReclaimFrame event, which releases frames preferring
// free -> inactive -> active. Variants exist using the *complex* commands (one FIFO/LRU/MRU
// command) and equivalent *simple-command* sequences; the command-granularity ablation
// (§4.2's flexibility-vs-overhead trade-off) compares them.
#ifndef HIPEC_POLICIES_POLICIES_H_
#define HIPEC_POLICIES_POLICIES_H_

#include "hipec/engine.h"
#include "hipec/program.h"

namespace hipec::policies {

// How the eviction step is expressed.
enum class CommandStyle {
  kComplex,  // one FIFO/LRU/MRU complex command
  kSimple,   // equivalent sequence of simple commands (queue-order based)
};

// The Table 2 program: FIFO with second chance over private active/inactive/free queues.
// Requires std-layout targets (free_target, inactive_target, reserved_target) to be set in
// HipecOptions.
core::PolicyProgram FifoSecondChancePolicy();

// Evict-most-recently-used. kSimple expresses MRU as DeQueue-tail of the active queue (exact
// when access order equals fault order, as in a sequential scan); kComplex uses the MRU
// command (exact always).
core::PolicyProgram MruPolicy(CommandStyle style = CommandStyle::kSimple);

// Evict-least-recently-used.
core::PolicyProgram LruPolicy(CommandStyle style = CommandStyle::kComplex);

// Plain FIFO (evict oldest-faulted).
core::PolicyProgram FifoPolicy(CommandStyle style = CommandStyle::kSimple);

// CLOCK (second chance over a single circular list), written entirely in simple commands:
// rotate the active queue clearing reference bits until an unreferenced victim appears.
core::PolicyProgram ClockPolicy();

// A 2Q-like policy: the engine's active queue serves as the probation FIFO (A1); pages found
// referenced when they reach its head are *promoted* to a protected user queue (Am) instead
// of being recycled. Victims come from unreferenced A1 heads first, then from Am. Scans pass
// through A1 without ever displacing the protected set — the classic scan-resistance
// argument, expressed in twenty HiPEC commands with one user-defined queue.
core::PolicyProgram TwoQueuePolicy();

// Options preset required by TwoQueuePolicy (one user queue).
core::HipecOptions TwoQueueOptions();

// AWRP (aging-weighted): each eviction rotates the active queue once, rewarding pages found
// referenced (+64 to the score, clearing the bit) and linearly aging idle ones (-1, floor
// 0); the victim is the minimum-weight page (one WeightedSelect command). The per-page word
// packs score * 1024 + the page's rotation position (newest = smallest), so score ties evict
// the newest page — MRU-like churn that lets a cold-start cyclic sweep converge on a stable
// resident set instead of degenerating to FIFO order, while the hot set of a hot/cold mix
// out-scores cold traffic and is never displaced.
core::PolicyProgram AwrpPolicy();

// An online perceptron over per-page features (referenced-this-round, dirty, bias): the
// score is a saturating dot product against a learned weight vector, accumulated into the
// per-page word with linear decay, and the victim is the minimum-weight page. The
// referenced-feature weight trains on reuse mispredictions (+1 when a page predicted idle
// is re-referenced, -1 when a page predicted busy is not), but the votes are batched and
// applied only after each rotation — the weights stay frozen while pages are scored, so
// same-rotation pages with identical behavior stay exactly tied. The word packs
// (accum * 2 + prediction) * 1024 + the rotation position, so those ties evict the newest
// page (the same cold-start loop tie-break as AwrpPolicy). Requires PerceptronOptions()
// (weights and the feature vector live in six consecutive user integer operands, as
// SatDotProduct expects).
core::PolicyProgram PerceptronPolicy();

// Options preset required by PerceptronPolicy: nine user ints — w0..w2 (initialized 64, 8,
// 1), f0..f2, and three per-scan temporaries (prediction, accumulator, batched votes).
core::HipecOptions PerceptronOptions();

// The shared ReclaimFrame event used by all of the above (exposed for reuse by custom
// policies): releases up to kReclaimCount frames, preferring free, then inactive, then
// active pages.
std::vector<core::Instruction> StandardReclaimEvent();

}  // namespace hipec::policies

#endif  // HIPEC_POLICIES_POLICIES_H_
