// Ready-made HiPEC policy programs, all using the standard operand layout (operand.h):
//
//   * FifoSecondChancePolicy() — the paper's reference program (Table 2 / Figure 4): Mach's
//     own FIFO-with-second-chance, reimplemented as a user policy. Used by the Table 3
//     overhead experiment.
//   * MruPolicy()              — evict the most recently used page; the right policy for the
//     nested-loops join of §5.3 (Figure 6).
//   * LruPolicy()              — evict the least recently used page; the "popular in
//     conventional operating systems" comparison policy.
//   * FifoPolicy()             — plain FIFO.
//
// Each PageFault event first serves from the private free list and falls back to eviction;
// each program also carries the shared ReclaimFrame event, which releases frames preferring
// free -> inactive -> active. Variants exist using the *complex* commands (one FIFO/LRU/MRU
// command) and equivalent *simple-command* sequences; the command-granularity ablation
// (§4.2's flexibility-vs-overhead trade-off) compares them.
#ifndef HIPEC_POLICIES_POLICIES_H_
#define HIPEC_POLICIES_POLICIES_H_

#include "hipec/engine.h"
#include "hipec/program.h"

namespace hipec::policies {

// How the eviction step is expressed.
enum class CommandStyle {
  kComplex,  // one FIFO/LRU/MRU complex command
  kSimple,   // equivalent sequence of simple commands (queue-order based)
};

// The Table 2 program: FIFO with second chance over private active/inactive/free queues.
// Requires std-layout targets (free_target, inactive_target, reserved_target) to be set in
// HipecOptions.
core::PolicyProgram FifoSecondChancePolicy();

// Evict-most-recently-used. kSimple expresses MRU as DeQueue-tail of the active queue (exact
// when access order equals fault order, as in a sequential scan); kComplex uses the MRU
// command (exact always).
core::PolicyProgram MruPolicy(CommandStyle style = CommandStyle::kSimple);

// Evict-least-recently-used.
core::PolicyProgram LruPolicy(CommandStyle style = CommandStyle::kComplex);

// Plain FIFO (evict oldest-faulted).
core::PolicyProgram FifoPolicy(CommandStyle style = CommandStyle::kSimple);

// CLOCK (second chance over a single circular list), written entirely in simple commands:
// rotate the active queue clearing reference bits until an unreferenced victim appears.
core::PolicyProgram ClockPolicy();

// A 2Q-like policy: the engine's active queue serves as the probation FIFO (A1); pages found
// referenced when they reach its head are *promoted* to a protected user queue (Am) instead
// of being recycled. Victims come from unreferenced A1 heads first, then from Am. Scans pass
// through A1 without ever displacing the protected set — the classic scan-resistance
// argument, expressed in twenty HiPEC commands with one user-defined queue.
core::PolicyProgram TwoQueuePolicy();

// Options preset required by TwoQueuePolicy (one user queue).
core::HipecOptions TwoQueueOptions();

// The shared ReclaimFrame event used by all of the above (exposed for reuse by custom
// policies): releases up to kReclaimCount frames, preferring free, then inactive, then
// active pages.
std::vector<core::Instruction> StandardReclaimEvent();

}  // namespace hipec::policies

#endif  // HIPEC_POLICIES_POLICIES_H_
