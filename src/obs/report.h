// Run-report builder: turns the JSON lines the benches print (bench_util::JsonLine output
// from bench_scenario, bench_faultpath, bench_interpreter, ...) into
//
//   * a human-readable summary table (one section per scenario, one row per metric), and
//   * a machine-readable report whose "metrics" map uses exactly the flattened names
//     check_perf_regression.py gates on (scenario.<name>.<metric>,
//     faultpath.normalized.<policy>, interpreter.ir_speedup, ...), so a report file can be
//     fed to the gate with --report instead of raw bench stdout.
//
// The builder also audits what it reads: any scenario record with a nonzero trace_dropped
// (ring-buffer overwrites — the timeline is incomplete) becomes a warning, as does any
// JSON-looking line that fails to parse. `hipec-report --strict` turns warnings into a
// nonzero exit; CI runs `--selfcheck` so the parsing can't silently rot.
#ifndef HIPEC_OBS_REPORT_H_
#define HIPEC_OBS_REPORT_H_

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace hipec::obs {

struct ReportWarning {
  std::string source;   // scenario or bench the warning is about
  std::string message;

  bool operator==(const ReportWarning&) const = default;
};

// One bench_scenario summary record, lifted out of its JSON line.
struct ScenarioSummary {
  std::string name;
  int64_t tenants = 0;
  int64_t background = 0;
  int64_t faults = 0;
  int64_t requests = 0;
  int64_t requests_rejected = 0;
  int64_t forced_reclaims = 0;
  int64_t flush_exchange = 0;
  int64_t flush_sync = 0;
  int64_t checker_kills = 0;
  int64_t audits = 0;
  int64_t trace_dropped = 0;
  double reject_rate = 0.0;
  double virtual_sec = 0.0;
  double host_sec = 0.0;
};

// One bench_server per-client latency record (the daemon's probe-fed service-time
// histogram, summarized per session).
struct ServerClientSummary {
  std::string name;
  int64_t completions = 0;
  int64_t lat_count = 0;
  double lat_mean_ns = 0.0;
  int64_t lat_p50_ns = 0;
  int64_t lat_p99_ns = 0;
};

struct Report {
  std::vector<ScenarioSummary> scenarios;
  std::vector<ServerClientSummary> server_clients;
  // Flattened metric map, check_perf_regression.py naming.
  std::map<std::string, double> metrics;
  std::vector<ReportWarning> warnings;
  size_t records = 0;        // JSON objects consumed
  size_t ignored_lines = 0;  // non-JSON lines skipped (human tables, rules, blank)
};

// Reads a bench stdout capture: keeps every line that parses as a JSON object, skips
// everything else, and warns (in the report built later) about lines that start with '{'
// but fail to parse. Appends to *records.
void ParseJsonLines(std::istream& in, std::vector<JsonValue>* records, size_t* ignored,
                    std::vector<ReportWarning>* parse_warnings);

Report BuildReport(const std::vector<JsonValue>& records);

// The human summary (scenario sections, faultpath table, warnings).
std::string RenderReportTable(const Report& report);

// The machine report: {"report_version":1,"metrics":{...},"scenarios":[...],"warnings":[...]}.
std::string RenderReportJson(const Report& report);

// Runs the parser and builder over an embedded known-good sample and checks every derived
// number, then round-trips the rendered report JSON through the parser. Returns true on
// success; diagnostics explains the first failure.
bool SelfCheck(std::string* diagnostics);

}  // namespace hipec::obs

#endif  // HIPEC_OBS_REPORT_H_
