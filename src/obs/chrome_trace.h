// Chrome trace-event exporter: renders a Tracer snapshot as the JSON Object Format that
// chrome://tracing and ui.perfetto.dev load directly, with one timeline track per tenant.
//
// Emitted schema (documented in docs/OBSERVABILITY.md and validated by the golden test):
//
//   {"displayTimeUnit":"ms","traceEvents":[
//     {"name":"process_name","ph":"M","pid":1,"args":{"name":"<process name>"}},
//     {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"kernel"}},
//     {"name":"thread_name","ph":"M","pid":1,"tid":<k+1>,"args":{"name":"<track k name>"}},
//     {"name":"<event>","ph":"i","s":"t","cat":"<category>","ts":<microseconds>,
//      "pid":1,"tid":<track>,"args":{"a":...,"b":...,"code":...}},
//     ...]}
//
// All simulation events are instantaneous on the virtual clock (costs are charged as clock
// advances, not as spans), so everything exports as thread-scoped instant events ("ph":"i");
// "ts" is virtual nanoseconds divided by 1000 with fractional precision preserved.
//
// Track routing: kFault events carry a task id in `a`; kPolicy, kReclaim, and kManager carry
// a container id in `a`. A ChromeTraceTrack matches either id and claims the event for its
// tid; everything unmatched (checker wakeups, evictions, fills, IPC, background tasks with
// no declared track) lands on tid 0, the "kernel" track.
#ifndef HIPEC_OBS_CHROME_TRACE_H_
#define HIPEC_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace hipec::obs {

// One named timeline track (a tenant, usually). Either id may be 0 (= matches nothing);
// container_id 0 covers tenants that were denied admission and ran non-specific.
struct ChromeTraceTrack {
  uint64_t task_id = 0;
  uint64_t container_id = 0;
  std::string name;
};

// Renders the whole trace as one JSON document.
std::string ExportChromeTrace(const std::vector<sim::TraceEvent>& events,
                              const std::vector<ChromeTraceTrack>& tracks,
                              const std::string& process_name);

// ExportChromeTrace + write to `path`. False (with *error set) on I/O failure.
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<sim::TraceEvent>& events,
                          const std::vector<ChromeTraceTrack>& tracks,
                          const std::string& process_name, std::string* error);

// Human-readable label for one event ("fault", "request-reject", "forced-reclaim", ...).
// Exposed so tests can assert on names without duplicating the mapping.
std::string ChromeTraceEventName(const sim::TraceEvent& event);

}  // namespace hipec::obs

#endif  // HIPEC_OBS_CHROME_TRACE_H_
