// Fixed-bucket log-scale histograms for latency and occupancy distributions.
//
// A Histogram is a plain struct of fixed arrays: Record() is one bit_width, one clamp, and a
// handful of indexed adds — no allocation ever, so probes can sit on the fault path. Buckets
// are powers of two: bucket 0 holds the value 0, bucket i (1 <= i < 63) holds [2^(i-1), 2^i),
// and bucket 63 is the overflow bucket for everything at or above 2^62 (quantiles falling in
// it report the exact running maximum instead of interpolating).
//
// Quantile estimates interpolate linearly inside the chosen bucket, clamped to the running
// min/max, so p50/p90/p99 are exact for single-bucket distributions and within one bucket
// width (a factor of two) otherwise — the standard log-histogram trade: bounded error,
// constant memory, mergeable across subsystems.
#ifndef HIPEC_OBS_HISTOGRAM_H_
#define HIPEC_OBS_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace hipec::obs {

class Histogram {
 public:
  static constexpr size_t kBuckets = 64;
  static constexpr size_t kOverflowBucket = kBuckets - 1;

  // Negative samples clamp to 0 (durations on the virtual clock are never negative; the
  // clamp keeps a miscomputed delta from indexing off the array).
  void Record(int64_t value) {
    uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
    ++buckets_[BucketOf(v)];
    if (count_ == 0 || v < min_) {
      min_ = v;
    }
    if (count_ == 0 || v > max_) {
      max_ = v;
    }
    ++count_;
    sum_ += v;
  }

  // Bucket index for a value: 0 for 0, bit_width otherwise, clamped into the overflow bucket.
  static constexpr size_t BucketOf(uint64_t v) {
    size_t b = static_cast<size_t>(std::bit_width(v));
    return b < kOverflowBucket ? b : kOverflowBucket;
  }
  // Inclusive lower bound of bucket i.
  static constexpr uint64_t BucketLo(size_t i) {
    return i <= 1 ? 0 : uint64_t{1} << (i - 1);
  }
  // Inclusive upper bound of bucket i (the overflow bucket tops out at UINT64_MAX).
  static constexpr uint64_t BucketHi(size_t i) {
    if (i == 0) {
      return 0;
    }
    if (i >= kOverflowBucket) {
      return ~uint64_t{0};
    }
    return (uint64_t{1} << i) - 1;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t BucketCount(size_t i) const { return i < kBuckets ? buckets_[i] : 0; }

  // Nearest-rank quantile estimate, q in [0, 1]. 0 with no samples; exact for q=1 (the
  // running max) and whenever the chosen rank falls in the overflow bucket.
  uint64_t Quantile(double q) const;

  void Clear() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  void MergeFrom(const Histogram& other);

  // One-line human summary: "count=12 mean=340.1 p50=256 p90=1023 p99=2047 max=2311".
  std::string Summary() const;

  // Appends one JSON object: count/min/max/mean/p50/p90/p99 plus the non-empty buckets as
  // [lo, hi, count] triples. Machine-readable end of the flight-recorder dump.
  void AppendJson(std::string* out) const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace hipec::obs

#endif  // HIPEC_OBS_HISTOGRAM_H_
