#include "obs/chrome_trace.h"

#include <cstdio>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace hipec::obs {

namespace {

// Builds the args object for one event; category-specific field names beat raw a/b.
void AppendArgs(std::string* out, const sim::TraceEvent& e) {
  char buf[128];
  const char* a_name = "a";
  const char* b_name = "b";
  switch (e.category) {
    case sim::TraceCategory::kFault:
      a_name = "task";
      b_name = "vaddr";
      break;
    case sim::TraceCategory::kFill:
    case sim::TraceCategory::kIpc:
      a_name = "object";
      b_name = "offset";
      break;
    case sim::TraceCategory::kEviction:
      a_name = "frame";
      b_name = "object";
      break;
    case sim::TraceCategory::kPolicy:
      a_name = "container";
      b_name = "event";
      break;
    case sim::TraceCategory::kReclaim:
    case sim::TraceCategory::kManager:
      a_name = "container";
      b_name = "frames";
      break;
    case sim::TraceCategory::kChecker:
      a_name = "interval_ns";
      b_name = "containers";
      break;
  }
  std::snprintf(buf, sizeof(buf), "{\"%s\":%llu,\"%s\":%llu,\"code\":%u}", a_name,
                static_cast<unsigned long long>(e.a), b_name,
                static_cast<unsigned long long>(e.b), static_cast<unsigned>(e.code));
  *out += buf;
}

}  // namespace

std::string ChromeTraceEventName(const sim::TraceEvent& e) {
  switch (e.category) {
    case sim::TraceCategory::kFault:
      return "fault";
    case sim::TraceCategory::kFill:
      return e.code == 0 ? "fill-zero" : e.code == 1 ? "fill-disk" : "fill-pager";
    case sim::TraceCategory::kEviction:
      return e.code == 1 ? "evict-dirty" : "evict";
    case sim::TraceCategory::kPolicy:
      return e.code == 0 ? "policy" : e.code == 1 ? "policy-timeout" : "policy-error";
    case sim::TraceCategory::kReclaim:
      return e.code == 1 ? "forced-reclaim" : "reclaim";
    case sim::TraceCategory::kChecker:
      return e.code == 0   ? "checker-wakeup"
             : e.code == 1 ? "checker-timeout"
                           : "checker-kill";
    case sim::TraceCategory::kIpc:
      return "ipc";
    case sim::TraceCategory::kManager:
      switch (e.code) {
        case 0: return "grant";
        case 1: return "request-reject";
        case 2: return "migrate";
        case 3: return "flush-exchange";
        case 4: return "flush-sync";
        case 5: return "flush-clean";
        default: return "manager";
      }
  }
  return "event";
}

std::string ExportChromeTrace(const std::vector<sim::TraceEvent>& events,
                              const std::vector<ChromeTraceTrack>& tracks,
                              const std::string& process_name) {
  // tid routing tables. tid 0 is the kernel track; declared tracks get 1..N in order.
  std::unordered_map<uint64_t, int> task_tid;
  std::unordered_map<uint64_t, int> container_tid;
  for (size_t i = 0; i < tracks.size(); ++i) {
    int tid = static_cast<int>(i) + 1;
    if (tracks[i].task_id != 0) {
      task_tid.emplace(tracks[i].task_id, tid);
    }
    if (tracks[i].container_id != 0) {
      container_tid.emplace(tracks[i].container_id, tid);
    }
  }
  auto tid_of = [&](const sim::TraceEvent& e) -> int {
    switch (e.category) {
      case sim::TraceCategory::kFault: {
        auto it = task_tid.find(e.a);
        return it == task_tid.end() ? 0 : it->second;
      }
      case sim::TraceCategory::kPolicy:
      case sim::TraceCategory::kReclaim:
      case sim::TraceCategory::kManager: {
        auto it = container_tid.find(e.a);
        return it == container_tid.end() ? 0 : it->second;
      }
      case sim::TraceCategory::kChecker:
        // Kill events carry the victim container id in `a`; route them onto its track so the
        // kill shows up where the tenant's timeline ends.
        if (e.code == 2) {
          auto it = container_tid.find(e.a);
          return it == container_tid.end() ? 0 : it->second;
        }
        return 0;
      default:
        return 0;
    }
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];

  // Metadata: process name, then one thread_name per track (kernel first).
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"";
  AppendJsonEscaped(&out, process_name);
  out += "\"}}";
  out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"kernel\"}}";
  for (size_t i = 0; i < tracks.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"",
                  static_cast<int>(i) + 1);
    out += buf;
    AppendJsonEscaped(&out, tracks[i].name);
    out += "\"}}";
  }

  for (const sim::TraceEvent& e : events) {
    out += ",{\"name\":\"";
    AppendJsonEscaped(&out, ChromeTraceEventName(e));
    // ts is microseconds; keep nanosecond precision as a fraction.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"%s\",\"ts\":%lld.%03lld,"
                  "\"pid\":1,\"tid\":%d,\"args\":",
                  TraceCategoryName(e.category), static_cast<long long>(e.time / 1000),
                  static_cast<long long>(e.time % 1000), tid_of(e));
    out += buf;
    AppendArgs(&out, e);
    out += '}';
  }
  out += "]}";
  return out;
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<sim::TraceEvent>& events,
                          const std::vector<ChromeTraceTrack>& tracks,
                          const std::string& process_name, std::string* error) {
  std::string json = ExportChromeTrace(events, tracks, process_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok && error != nullptr) {
    *error = "short write to " + path;
  }
  return ok;
}

}  // namespace hipec::obs
