#include "obs/flight_recorder.h"

#include <cstdio>

#include "obs/json.h"

namespace hipec::obs {

const char* TraceCategoryName(sim::TraceCategory category) {
  switch (category) {
    case sim::TraceCategory::kFault: return "fault";
    case sim::TraceCategory::kFill: return "fill";
    case sim::TraceCategory::kEviction: return "eviction";
    case sim::TraceCategory::kPolicy: return "policy";
    case sim::TraceCategory::kReclaim: return "reclaim";
    case sim::TraceCategory::kChecker: return "checker";
    case sim::TraceCategory::kIpc: return "ipc";
    case sim::TraceCategory::kManager: return "manager";
  }
  return "unknown";
}

void FlightRecorder::AddProbeSource(std::string name, const ProbeSet* probes) {
  probe_sources_.push_back(ProbeSource{std::move(name), probes});
}

void FlightRecorder::AddCounterSource(std::string name, const sim::CounterSet* counters) {
  counter_sources_.push_back(CounterSource{std::move(name), counters});
}

std::string FlightRecorder::Snapshot(const std::string& reason) const {
  std::string out = "{\"flight_recorder\":{\"reason\":\"";
  AppendJsonEscaped(&out, reason);
  out += '"';

  char buf[192];
  if (tracer_ != nullptr) {
    std::vector<sim::TraceEvent> events = tracer_->Snapshot();
    size_t keep = events.size() < last_events_ ? events.size() : last_events_;
    size_t from = events.size() - keep;
    std::snprintf(buf, sizeof(buf),
                  ",\"trace_total_recorded\":%llu,\"trace_dropped\":%llu,"
                  "\"trace_window\":%zu,\"events\":[",
                  static_cast<unsigned long long>(tracer_->total_recorded()),
                  static_cast<unsigned long long>(tracer_->dropped()), keep);
    out += buf;
    for (size_t i = from; i < events.size(); ++i) {
      const sim::TraceEvent& e = events[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"t\":%lld,\"cat\":\"%s\",\"code\":%u,\"a\":%llu,\"b\":%llu}",
                    i == from ? "" : ",", static_cast<long long>(e.time),
                    TraceCategoryName(e.category), static_cast<unsigned>(e.code),
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
      out += buf;
    }
    out += ']';
  }

  out += ",\"probes\":{";
  for (size_t i = 0; i < probe_sources_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    AppendJsonEscaped(&out, probe_sources_[i].name);
    out += "\":";
    probe_sources_[i].probes->AppendJson(&out);
  }
  out += "},\"counters\":{";
  for (size_t i = 0; i < counter_sources_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    AppendJsonEscaped(&out, counter_sources_[i].name);
    out += "\":{";
    bool first = true;
    for (const auto& [name, value] : counter_sources_[i].counters->all()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      AppendJsonEscaped(&out, name);
      std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(value));
      out += buf;
    }
    out += '}';
  }
  out += "}}}";
  return out;
}

void FlightRecorder::Dump(const std::string& reason) {
  ++dumps_;
  std::string json = Snapshot(reason);
  if (sink_) {
    sink_(json);
  } else {
    std::fprintf(stderr, "%s\n", json.c_str());
  }
}

}  // namespace hipec::obs
