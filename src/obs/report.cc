#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hipec::obs {

namespace {

ScenarioSummary ScenarioFromRecord(const JsonValue& rec) {
  ScenarioSummary s;
  s.name = rec.StringOr("scenario", "?");
  s.tenants = rec.IntOr("tenants", 0);
  s.background = rec.IntOr("background", 0);
  s.faults = rec.IntOr("faults", 0);
  s.requests = rec.IntOr("requests", 0);
  s.requests_rejected = rec.IntOr("requests_rejected", 0);
  s.forced_reclaims = rec.IntOr("forced_reclaims", 0);
  s.flush_exchange = rec.IntOr("flush_exchange", 0);
  s.flush_sync = rec.IntOr("flush_sync", 0);
  s.checker_kills = rec.IntOr("checker_kills", 0);
  s.audits = rec.IntOr("audits", 0);
  s.trace_dropped = rec.IntOr("trace_dropped", 0);
  s.reject_rate = rec.NumberOr("reject_rate", 0.0);
  s.virtual_sec = rec.NumberOr("virtual_sec", 0.0);
  s.host_sec = rec.NumberOr("host_sec", 0.0);
  return s;
}

void AppendNumber(std::string* out, double value) {
  char buf[64];
  // Integral values print without a fraction so counts stay counts in the JSON report.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", value);
  }
  *out += buf;
}

}  // namespace

void ParseJsonLines(std::istream& in, std::vector<JsonValue>* records, size_t* ignored,
                    std::vector<ReportWarning>* parse_warnings) {
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace only; the benches print objects flush-left.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] != '{') {
      if (ignored != nullptr) {
        ++*ignored;
      }
      continue;
    }
    JsonValue value;
    std::string error;
    if (!ParseJson(std::string_view(line).substr(start), &value, &error) ||
        !value.IsObject()) {
      if (parse_warnings != nullptr) {
        std::string snippet = line.substr(start, 40);
        parse_warnings->push_back(
            ReportWarning{"parser", "unparseable JSON line '" + snippet + "...': " + error});
      }
      continue;
    }
    records->push_back(std::move(value));
  }
}

Report BuildReport(const std::vector<JsonValue>& records) {
  Report report;
  report.records = records.size();
  for (const JsonValue& rec : records) {
    std::string bench = rec.StringOr("bench", "");
    bool has_metric = rec.Get("metric") != nullptr;

    if (bench == "scenario" && !has_metric) {
      ScenarioSummary s = ScenarioFromRecord(rec);
      if (s.trace_dropped > 0) {
        report.warnings.push_back(ReportWarning{
            s.name, "trace ring dropped " + std::to_string(s.trace_dropped) +
                        " event(s); exported timelines are incomplete — raise the tracer "
                        "capacity or shorten the run"});
      }
      // Flatten the countable fields so the gate (and diffs between runs) can reference them
      // by name, alongside the explicit metric records.
      const std::string prefix = "scenario." + s.name + ".";
      report.metrics[prefix + "faults"] = static_cast<double>(s.faults);
      report.metrics[prefix + "requests"] = static_cast<double>(s.requests);
      report.metrics[prefix + "requests_rejected"] = static_cast<double>(s.requests_rejected);
      report.metrics[prefix + "forced_reclaims"] = static_cast<double>(s.forced_reclaims);
      report.metrics[prefix + "flush_exchange"] = static_cast<double>(s.flush_exchange);
      report.metrics[prefix + "flush_sync"] = static_cast<double>(s.flush_sync);
      report.metrics[prefix + "checker_kills"] = static_cast<double>(s.checker_kills);
      report.metrics[prefix + "trace_dropped"] = static_cast<double>(s.trace_dropped);
      report.scenarios.push_back(std::move(s));
    } else if (bench == "scenario" && has_metric) {
      report.metrics["scenario." + rec.StringOr("scenario", "?") + "." +
                     rec.StringOr("metric", "?")] = rec.NumberOr("value", 0.0);
    } else if (bench == "faultpath" && rec.StringOr("config", "") == "production" &&
               rec.Get("normalized_score") != nullptr) {
      report.metrics["faultpath.normalized." + rec.StringOr("policy", "?")] =
          rec.NumberOr("normalized_score", 0.0);
    } else if (bench == "faultpath" && has_metric && rec.Get("policy") != nullptr) {
      report.metrics["faultpath." + rec.StringOr("metric", "?") + "." +
                     rec.StringOr("policy", "?")] = rec.NumberOr("value", 0.0);
    } else if (bench == "faultpath" && has_metric) {
      report.metrics["faultpath." + rec.StringOr("metric", "?")] = rec.NumberOr("value", 0.0);
    } else if (bench == "tournament" && rec.Get("workload") != nullptr) {
      // One leaderboard cell from bench_tournament: flatten every gate-able number under
      // tournament.<field>.<policy>.<workload> so check_tournament.py and run-to-run diffs
      // can reference cells by name.
      const std::string suffix =
          rec.StringOr("policy", "?") + "." + rec.StringOr("workload", "?");
      report.metrics["tournament.hit_ratio." + suffix] = rec.NumberOr("hit_ratio", 0.0);
      report.metrics["tournament.ns_per_fault." + suffix] = rec.NumberOr("ns_per_fault", 0.0);
      report.metrics["tournament.kills." + suffix] = rec.NumberOr("kills", 0.0);
      report.metrics["tournament.rejects." + suffix] = rec.NumberOr("rejects", 0.0);
    } else if (bench == "replay" && rec.Get("trace") != nullptr) {
      // One trace-replay cell (bench_tournament --traces): only the deterministic
      // virtual-machine facts, flattened under replay.<field>.<policy>.<trace> — these
      // must be byte-identical run to run and across JIT modes, so the CI replay gate can
      // diff them directly. Host timing (ns_per_fault) is deliberately excluded.
      const std::string suffix =
          rec.StringOr("policy", "?") + "." + rec.StringOr("trace", "?");
      report.metrics["replay.hit_ratio." + suffix] = rec.NumberOr("hit_ratio", 0.0);
      report.metrics["replay.faults." + suffix] = rec.NumberOr("faults", 0.0);
      report.metrics["replay.records." + suffix] = rec.NumberOr("records", 0.0);
      report.metrics["replay.virtual_fault_ns." + suffix] =
          rec.NumberOr("virtual_fault_ns", 0.0);
    } else if (bench == "executor_arith_loop" &&
               rec.StringOr("metric", "") == "ir_speedup") {
      report.metrics["interpreter.ir_speedup"] = rec.NumberOr("value", 0.0);
    } else if (bench == "server" && has_metric) {
      // bench_server's gated per-core rate. Mirror the extractor's hardware_threads filter
      // so a report from a small host never smuggles the metric past the gate.
      if (rec.StringOr("metric", "") == "requests_per_sec_per_core" &&
          rec.IntOr("hardware_threads", 0) < 8) {
        continue;
      }
      report.metrics["server." + rec.StringOr("metric", "?")] = rec.NumberOr("value", 0.0);
    } else if (bench == "server" && rec.Get("client") != nullptr) {
      // Per-client latency summary from the daemon's drain-loop probes.
      ServerClientSummary c;
      c.name = rec.StringOr("client", "?");
      c.completions = rec.IntOr("completions", 0);
      c.lat_count = rec.IntOr("lat_count", 0);
      c.lat_mean_ns = rec.NumberOr("lat_mean_ns", 0.0);
      c.lat_p50_ns = rec.IntOr("lat_p50_ns", 0);
      c.lat_p99_ns = rec.IntOr("lat_p99_ns", 0);
      report.server_clients.push_back(std::move(c));
    } else if (bench == "server" && rec.Get("clients") != nullptr &&
               rec.Get("requests_per_sec") != nullptr) {
      // Informational per-phase throughput, same naming as the extractor.
      report.metrics["server.requests_per_sec." +
                     std::to_string(rec.IntOr("clients", 0)) + "c"] =
          rec.NumberOr("requests_per_sec", 0.0);
    }
  }
  return report;
}

std::string RenderReportTable(const Report& report) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "hipec-report: %zu JSON record(s), %zu other line(s)\n",
                report.records, report.ignored_lines);
  os << buf;

  if (!report.scenarios.empty()) {
    std::snprintf(buf, sizeof(buf), "\n%-20s %9s %8s %8s %6s %7s %7s %7s %6s %8s %8s\n",
                  "scenario", "faults", "req", "rej", "rej%", "forced", "flushx", "flushs",
                  "kills", "vsec", "dropped");
    os << buf;
    for (const ScenarioSummary& s : report.scenarios) {
      std::snprintf(buf, sizeof(buf),
                    "%-20s %9lld %8lld %8lld %5.1f%% %7lld %7lld %7lld %6lld %8.3f %8lld\n",
                    s.name.c_str(), static_cast<long long>(s.faults),
                    static_cast<long long>(s.requests),
                    static_cast<long long>(s.requests_rejected), 100.0 * s.reject_rate,
                    static_cast<long long>(s.forced_reclaims),
                    static_cast<long long>(s.flush_exchange),
                    static_cast<long long>(s.flush_sync),
                    static_cast<long long>(s.checker_kills), s.virtual_sec,
                    static_cast<long long>(s.trace_dropped));
      os << buf;
    }
  }

  if (!report.server_clients.empty()) {
    std::snprintf(buf, sizeof(buf), "\n%-24s %12s %12s %12s %10s %10s\n", "server client",
                  "completions", "lat_count", "mean_ns", "p50_ns", "p99_ns");
    os << buf;
    for (const ServerClientSummary& c : report.server_clients) {
      std::snprintf(buf, sizeof(buf), "%-24s %12lld %12lld %12.1f %10lld %10lld\n",
                    c.name.c_str(), static_cast<long long>(c.completions),
                    static_cast<long long>(c.lat_count), c.lat_mean_ns,
                    static_cast<long long>(c.lat_p50_ns),
                    static_cast<long long>(c.lat_p99_ns));
      os << buf;
    }
  }

  if (!report.metrics.empty()) {
    os << "\nmetrics (check_perf_regression.py names):\n";
    for (const auto& [name, value] : report.metrics) {
      std::snprintf(buf, sizeof(buf), "  %-50s %14.4f\n", name.c_str(), value);
      os << buf;
    }
  }

  if (!report.warnings.empty()) {
    os << "\nWARNINGS:\n";
    for (const ReportWarning& w : report.warnings) {
      os << "  [" << w.source << "] " << w.message << "\n";
    }
  }
  return os.str();
}

std::string RenderReportJson(const Report& report) {
  std::string out = "{\"report_version\":1,\"records\":";
  AppendNumber(&out, static_cast<double>(report.records));
  out += ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : report.metrics) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":";
    AppendNumber(&out, value);
  }
  out += "},\"scenarios\":[";
  first = true;
  for (const ScenarioSummary& s : report.scenarios) {
    if (!first) {
      out += ',';
    }
    first = false;
    char buf[512];
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, s.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"tenants\":%lld,\"background\":%lld,\"faults\":%lld,"
                  "\"requests\":%lld,\"requests_rejected\":%lld,\"reject_rate\":%.4f,"
                  "\"forced_reclaims\":%lld,\"flush_exchange\":%lld,\"flush_sync\":%lld,"
                  "\"checker_kills\":%lld,\"audits\":%lld,\"trace_dropped\":%lld,"
                  "\"virtual_sec\":%.3f,\"host_sec\":%.3f}",
                  static_cast<long long>(s.tenants), static_cast<long long>(s.background),
                  static_cast<long long>(s.faults), static_cast<long long>(s.requests),
                  static_cast<long long>(s.requests_rejected), s.reject_rate,
                  static_cast<long long>(s.forced_reclaims),
                  static_cast<long long>(s.flush_exchange),
                  static_cast<long long>(s.flush_sync),
                  static_cast<long long>(s.checker_kills),
                  static_cast<long long>(s.audits),
                  static_cast<long long>(s.trace_dropped), s.virtual_sec, s.host_sec);
    out += buf;
  }
  out += "],\"server_clients\":[";
  first = true;
  for (const ServerClientSummary& c : report.server_clients) {
    if (!first) {
      out += ',';
    }
    first = false;
    char buf[256];
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, c.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"completions\":%lld,\"lat_count\":%lld,\"lat_mean_ns\":%.1f,"
                  "\"lat_p50_ns\":%lld,\"lat_p99_ns\":%lld}",
                  static_cast<long long>(c.completions), static_cast<long long>(c.lat_count),
                  c.lat_mean_ns, static_cast<long long>(c.lat_p50_ns),
                  static_cast<long long>(c.lat_p99_ns));
    out += buf;
  }
  out += "],\"warnings\":[";
  first = true;
  for (const ReportWarning& w : report.warnings) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"source\":\"";
    AppendJsonEscaped(&out, w.source);
    out += "\",\"message\":\"";
    AppendJsonEscaped(&out, w.message);
    out += "\"}";
  }
  out += "]}";
  return out;
}

bool SelfCheck(std::string* diagnostics) {
  auto fail = [diagnostics](const std::string& what) {
    if (diagnostics != nullptr) {
      *diagnostics = "selfcheck: " + what;
    }
    return false;
  };

  // A miniature bench capture: a human table line, a scenario summary with dropped events,
  // a scenario metric, faultpath production + speedup + bare-metric lines, an interpreter
  // line, tournament and trace-replay cells, and one corrupt JSON line.
  static const char kSample[] =
      "scenario: sample — human table line, must be skipped\n"
      "{\"bench\":\"scenario\",\"scenario\":\"sample\",\"tenants\":3,\"background\":1,"
      "\"faults\":1200,\"requests\":40,\"requests_rejected\":10,\"reject_rate\":0.2500,"
      "\"forced_reclaims\":7,\"flush_exchange\":5,\"flush_sync\":2,"
      "\"burst_watermark_final\":512,\"checker_kills\":1,\"audits\":99,"
      "\"trace_dropped\":3,\"virtual_sec\":1.500,\"host_sec\":0.050}\n"
      "{\"bench\":\"scenario\",\"scenario\":\"sample\",\"metric\":\"faults_per_host_sec\","
      "\"value\":24000}\n"
      "{\"bench\":\"faultpath\",\"policy\":\"fifo\",\"config\":\"production\","
      "\"faults\":64000,\"faults_per_sec\":100000,\"ns_per_fault\":10000.0,"
      "\"normalized_score\":0.004321}\n"
      "{\"bench\":\"faultpath\",\"policy\":\"fifo\",\"metric\":\"speedup_vs_pre_pr\","
      "\"value\":2.210}\n"
      "{\"bench\":\"faultpath\",\"metric\":\"probe_overhead_pct\",\"value\":3.100}\n"
      "{\"bench\":\"executor_arith_loop\",\"metric\":\"ir_speedup\",\"value\":2.900}\n"
      "{\"bench\":\"tournament\",\"policy\":\"awrp\",\"workload\":\"hot_cold\","
      "\"accesses\":8000,\"faults\":640,\"hit_ratio\":0.9200,\"ns_per_fault\":5125.0,"
      "\"kills\":0,\"rejects\":0}\n"
      "{\"bench\":\"replay\",\"policy\":\"awrp\",\"trace\":\"kv_store\","
      "\"records\":8600,\"faults\":2070,\"hit_ratio\":0.7590,"
      "\"virtual_fault_ns\":20700000,\"kills\":0,\"rejects\":0}\n"
      "{\"bench\":\"server\",\"metric\":\"requests_per_sec_per_core\",\"value\":90000,"
      "\"hardware_threads\":16,\"clients\":4}\n"
      "{\"bench\":\"server\",\"metric\":\"requests_per_sec_per_core\",\"value\":11,"
      "\"hardware_threads\":1,\"clients\":4}\n"
      "{\"bench\":\"server\",\"clients\":4,\"hardware_threads\":16,\"requests\":8000,"
      "\"wall_sec\":0.1,\"requests_per_sec\":80000,\"ok\":1}\n"
      "{\"bench\":\"server\",\"client\":\"bench#0\",\"completions\":2000,"
      "\"lat_count\":2000,\"lat_mean_ns\":640.5,\"lat_p50_ns\":440,\"lat_p99_ns\":2040}\n"
      "{this line is corrupt json\n";

  std::istringstream in(kSample);
  std::vector<JsonValue> records;
  size_t ignored = 0;
  std::vector<ReportWarning> parse_warnings;
  ParseJsonLines(in, &records, &ignored, &parse_warnings);
  if (records.size() != 12) {
    return fail("expected 12 records, parsed " + std::to_string(records.size()));
  }
  if (ignored != 1) {
    return fail("expected 1 ignored line, saw " + std::to_string(ignored));
  }
  if (parse_warnings.size() != 1) {
    return fail("expected 1 parse warning for the corrupt line");
  }

  Report report = BuildReport(records);
  report.ignored_lines = ignored;
  report.warnings.insert(report.warnings.end(), parse_warnings.begin(), parse_warnings.end());

  if (report.scenarios.size() != 1) {
    return fail("expected 1 scenario summary");
  }
  const ScenarioSummary& s = report.scenarios[0];
  if (s.name != "sample" || s.faults != 1200 || s.requests_rejected != 10 ||
      s.forced_reclaims != 7 || s.flush_sync != 2 || s.checker_kills != 1 ||
      s.trace_dropped != 3) {
    return fail("scenario summary fields do not match the sample");
  }
  auto metric_is = [&](const char* name, double want) {
    auto it = report.metrics.find(name);
    return it != report.metrics.end() && std::abs(it->second - want) < 1e-9;
  };
  if (!metric_is("scenario.sample.faults_per_host_sec", 24000) ||
      !metric_is("scenario.sample.forced_reclaims", 7) ||
      !metric_is("scenario.sample.requests_rejected", 10) ||
      !metric_is("faultpath.normalized.fifo", 0.004321) ||
      !metric_is("faultpath.speedup_vs_pre_pr.fifo", 2.210) ||
      !metric_is("faultpath.probe_overhead_pct", 3.100) ||
      !metric_is("interpreter.ir_speedup", 2.900) ||
      !metric_is("tournament.hit_ratio.awrp.hot_cold", 0.9200) ||
      !metric_is("tournament.ns_per_fault.awrp.hot_cold", 5125.0) ||
      !metric_is("replay.hit_ratio.awrp.kv_store", 0.7590) ||
      !metric_is("replay.records.awrp.kv_store", 8600) ||
      !metric_is("replay.virtual_fault_ns.awrp.kv_store", 20700000) ||
      !metric_is("server.requests_per_sec_per_core", 90000) ||
      !metric_is("server.requests_per_sec.4c", 80000)) {
    return fail("flattened metrics do not match the sample");
  }
  // The small-host server record (hardware_threads 1, value 11) must have been dropped —
  // had it landed, the 90000 from the 16-thread record would have been overwritten.
  if (report.server_clients.size() != 1 || report.server_clients[0].name != "bench#0" ||
      report.server_clients[0].completions != 2000 ||
      report.server_clients[0].lat_p99_ns != 2040) {
    return fail("server client latency summary does not match the sample");
  }
  bool dropped_flagged = false;
  for (const ReportWarning& w : report.warnings) {
    if (w.source == "sample" && w.message.find("dropped 3") != std::string::npos) {
      dropped_flagged = true;
    }
  }
  if (!dropped_flagged) {
    return fail("nonzero trace_dropped was not flagged as a warning");
  }

  // The machine report must round-trip through our own parser.
  std::string json = RenderReportJson(report);
  JsonValue parsed;
  std::string error;
  if (!ParseJson(json, &parsed, &error)) {
    return fail("report JSON does not parse: " + error);
  }
  const JsonValue* metrics = parsed.Get("metrics");
  if (metrics == nullptr || !metrics->IsObject() ||
      std::abs(metrics->NumberOr("interpreter.ir_speedup", 0) - 2.9) > 1e-9) {
    return fail("report JSON round-trip lost metrics");
  }
  if (diagnostics != nullptr) {
    diagnostics->clear();
  }
  return true;
}

}  // namespace hipec::obs
