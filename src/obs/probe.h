// Named probe points over fixed-bucket histograms (histogram.h).
//
// Mirrors the interned-counter design in sim/stats.h: probe names are interned once into
// dense ProbeIds (normally by a namespace-scope initializer in the instrumented subsystem's
// .cc file), and each subsystem owns a ProbeSet — a plain vector of histograms indexed by id.
//
// Cost discipline, because probes sit on the fault path:
//   * Compiled out entirely with -DHIPEC_OBS_PROBES=0: Record() is an empty inline and
//     ProbesEnabled() is constant false, so instrumentation blocks fold away.
//   * Compiled in but disabled (the default at runtime): one predicted branch on a static
//     bool per probe site. bench_faultpath measures this configuration against
//     bench/baseline.json; the acceptance budget is <2% on ns/fault.
//   * Enabled: bucket increment per Record — still allocation-free except the first touch
//     of a new id, which grows the dense vector (same warm-up property as CounterSet).
//
// Call sites guard value computation with ProbesEnabled() so the disabled path does not even
// read the clock:
//
//   const sim::CounterId kProbeReadNs = obs::InternProbe("disk.read_ns");
//   ...
//   if (obs::ProbesEnabled()) probes_.Record(kProbeReadNs, total);
#ifndef HIPEC_OBS_PROBE_H_
#define HIPEC_OBS_PROBE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"

// Compile-time gate: -DHIPEC_OBS_PROBES=0 removes every probe from the binary.
#if !defined(HIPEC_OBS_PROBES)
#define HIPEC_OBS_PROBES 1
#endif

namespace hipec::obs {

using ProbeId = uint32_t;

// The process-wide probe name <-> id table. Thread-safe, like CounterRegistry: ids are
// dense and stable for the process lifetime; names live in a deque so NameOf() references
// survive later interning.
class ProbeRegistry {
 public:
  static ProbeRegistry& Instance();

  // Returns the id for `name`, interning it on first sight. Idempotent.
  ProbeId Intern(const std::string& name);

  static constexpr ProbeId kInvalid = ~ProbeId{0};
  ProbeId Find(const std::string& name) const;

  const std::string& NameOf(ProbeId id) const;
  size_t size() const;

 private:
  ProbeRegistry() = default;
  mutable std::mutex mu_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, ProbeId> index_;
};

inline ProbeId InternProbe(const char* name) {
  return ProbeRegistry::Instance().Intern(name);
}

constexpr bool ProbesCompiledIn() { return HIPEC_OBS_PROBES != 0; }

// A subsystem's bag of probe histograms, indexed by ProbeId. The runtime switch is
// process-wide (one flag flips every probe in every subsystem), matching how the tracer and
// the legacy-counter A/B switch work.
// Thread-safety matches Tracer: single-threaded (and lock-free) by default; a set shared by
// real fault threads calls EnableConcurrent() at construction time, after which Record()
// serializes on a leaf mutex. The runtime on/off switch is a relaxed atomic either way, so a
// disabled probe site costs one branch in both modes.
class ProbeSet {
 public:
  static void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  static bool enabled() {
    return ProbesCompiledIn() && enabled_.load(std::memory_order_relaxed);
  }

  void EnableConcurrent() { concurrent_ = true; }

  void Record(ProbeId id, int64_t value) {
#if HIPEC_OBS_PROBES
    if (!enabled()) [[likely]] {
      return;
    }
    if (concurrent_) {
      std::lock_guard<std::mutex> lock(mu_);
      RecordLocked(id, value);
      return;
    }
    RecordLocked(id, value);
#else
    (void)id;
    (void)value;
#endif
  }

  // The histogram for `id`, or nullptr if this set never recorded to it.
  const Histogram* Find(ProbeId id) const {
    return id < hists_.size() && hists_[id].count() > 0 ? &hists_[id] : nullptr;
  }

  // Recorded histograms keyed by probe name (sorted; empty histograms omitted).
  std::map<std::string, const Histogram*> all() const;

  void Clear() { hists_.clear(); }

  // Appends {"probe.name": {histogram json}, ...} for every non-empty histogram.
  void AppendJson(std::string* out) const;

 private:
  void RecordLocked(ProbeId id, int64_t value) {
    if (id >= hists_.size()) [[unlikely]] {
      Grow(id);
    }
    hists_[id].Record(value);
  }
  void Grow(ProbeId id);

  std::vector<Histogram> hists_;
  bool concurrent_ = false;
  mutable std::mutex mu_;
  static inline std::atomic<bool> enabled_{false};
};

// True when probe instrumentation should compute and record values right now.
inline bool ProbesEnabled() { return ProbeSet::enabled(); }

// RAII enable/disable for benches and tests; restores the previous state on scope exit.
class ScopedProbes {
 public:
  explicit ScopedProbes(bool on) : previous_(ProbeSet::enabled()) {
    ProbeSet::SetEnabled(on);
  }
  ~ScopedProbes() { ProbeSet::SetEnabled(previous_); }
  ScopedProbes(const ScopedProbes&) = delete;
  ScopedProbes& operator=(const ScopedProbes&) = delete;

 private:
  bool previous_;
};

}  // namespace hipec::obs

#endif  // HIPEC_OBS_PROBE_H_
