#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>

namespace hipec::obs {

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the smallest rank r (1-based) with r >= q * count.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) {
    ++rank;
  }
  rank = std::max<uint64_t>(rank, 1);

  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cumulative + buckets_[i] < rank) {
      cumulative += buckets_[i];
      continue;
    }
    if (i == kOverflowBucket) {
      return max_;  // unbounded bucket: interpolation is meaningless, the max is exact
    }
    // Interpolate inside [lo, hi], both clamped to the observed range.
    uint64_t lo = std::max(BucketLo(i), min_);
    uint64_t hi = std::min(BucketHi(i), max_);
    if (hi <= lo || buckets_[i] == 1) {
      return hi;
    }
    double within = static_cast<double>(rank - cumulative - 1) /
                    static_cast<double>(buckets_[i] - 1);
    return lo + static_cast<uint64_t>(within * static_cast<double>(hi - lo));
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (count_ == 0 || other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Quantile(0.50)),
                static_cast<unsigned long long>(Quantile(0.90)),
                static_cast<unsigned long long>(Quantile(0.99)),
                static_cast<unsigned long long>(Max()));
  return buf;
}

void Histogram::AppendJson(std::string* out) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.3f,"
                "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"buckets\":[",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(Min()),
                static_cast<unsigned long long>(Max()), Mean(),
                static_cast<unsigned long long>(Quantile(0.50)),
                static_cast<unsigned long long>(Quantile(0.90)),
                static_cast<unsigned long long>(Quantile(0.99)));
  *out += buf;
  bool first = true;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s[%llu,%llu,%llu]", first ? "" : ",",
                  static_cast<unsigned long long>(BucketLo(i)),
                  static_cast<unsigned long long>(BucketHi(i)),
                  static_cast<unsigned long long>(buckets_[i]));
    *out += buf;
    first = false;
  }
  *out += "]}";
}

}  // namespace hipec::obs
