#include "obs/probe.h"

#include "obs/json.h"

namespace hipec::obs {

ProbeRegistry& ProbeRegistry::Instance() {
  static ProbeRegistry* registry = new ProbeRegistry();
  return *registry;
}

ProbeId ProbeRegistry::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  ProbeId id = static_cast<ProbeId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

ProbeId ProbeRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

const std::string& ProbeRegistry::NameOf(ProbeId id) const {
  // Valid after unlock: names_ is a deque and entries are never erased.
  std::lock_guard<std::mutex> lock(mu_);
  return names_[id];
}

size_t ProbeRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

std::map<std::string, const Histogram*> ProbeSet::all() const {
  std::map<std::string, const Histogram*> out;
  const ProbeRegistry& registry = ProbeRegistry::Instance();
  for (ProbeId id = 0; id < hists_.size(); ++id) {
    if (hists_[id].count() > 0) {
      out.emplace(registry.NameOf(id), &hists_[id]);
    }
  }
  return out;
}

void ProbeSet::AppendJson(std::string* out) const {
  *out += '{';
  bool first = true;
  for (const auto& [name, hist] : all()) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += '"';
    AppendJsonEscaped(out, name);
    *out += "\":";
    hist->AppendJson(out);
  }
  *out += '}';
}

void ProbeSet::Grow(ProbeId id) {
  size_t want = ProbeRegistry::Instance().size();
  hists_.resize(want > id ? want : id + 1);
}

}  // namespace hipec::obs
