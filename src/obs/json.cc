#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hipec::obs {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s (at byte %zu)", message, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (depth_ > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true") || Fail("bad literal");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false") || Fail("bad literal");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null") || Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++depth_;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key string");
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        --depth_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++depth_;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        --depth_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    Consume('"');
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are passed through as two 3-byte sequences —
          // bench output only ever escapes control characters, so this is ample).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected a JSON value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->IsNumber() ? v->number : fallback;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->IsNumber() ? static_cast<int64_t>(v->number) : fallback;
}

std::string JsonValue::StringOr(std::string_view key, std::string fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->IsString() ? v->string : fallback;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned char>(ch));
          *out += hex;
        } else {
          *out += ch;
        }
    }
  }
}

}  // namespace hipec::obs
