// The flight recorder: a crash-dump view over the kernel's trace ring and the per-subsystem
// probe histograms. Subsystems register their ProbeSets and CounterSets once at scenario
// setup; when something goes wrong — the invariant auditor finds a violated frame invariant,
// or the security checker kills a tenant — Dump() renders one JSON object holding:
//
//   * the dump reason and the virtual timestamp,
//   * the last N trace events (newest slice of the ring; N defaults to 64 so a
//     checker-kill-storm scenario does not flood CI logs with megabytes of ring),
//   * total-recorded / dropped accounting for the ring, so a reader knows whether the
//     window is complete,
//   * every registered probe histogram (count/min/max/mean/p50/p90/p99 + buckets), and
//   * every registered counter set (non-zero counters only).
//
// Dumps go to a pluggable sink (stderr by default — bench stdout stays pure JSON lines).
// The recorder observes; it never mutates the tracer or the probe sets.
#ifndef HIPEC_OBS_FLIGHT_RECORDER_H_
#define HIPEC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/probe.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace hipec::obs {

class FlightRecorder {
 public:
  explicit FlightRecorder(const sim::Tracer* tracer, size_t last_events = 64)
      : tracer_(tracer), last_events_(last_events) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Registers a subsystem's probe histograms / counters under `name`. The pointee must
  // outlive the recorder (the scenario engine owns both and tears down together).
  void AddProbeSource(std::string name, const ProbeSet* probes);
  void AddCounterSource(std::string name, const sim::CounterSet* counters);

  // Renders the dump JSON for `reason` without emitting it (tests, and callers that attach
  // dumps to their own reports).
  std::string Snapshot(const std::string& reason) const;

  // Snapshot + emit through the sink. Counts dumps so tests can assert trigger wiring.
  void Dump(const std::string& reason);

  using Sink = std::function<void(const std::string& json)>;
  // Replaces the stderr sink (nullptr restores it).
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  int64_t dumps() const { return dumps_; }

 private:
  struct ProbeSource {
    std::string name;
    const ProbeSet* probes;
  };
  struct CounterSource {
    std::string name;
    const sim::CounterSet* counters;
  };

  const sim::Tracer* tracer_;
  size_t last_events_;
  std::vector<ProbeSource> probe_sources_;
  std::vector<CounterSource> counter_sources_;
  Sink sink_;
  int64_t dumps_ = 0;
};

// Short lowercase name for a trace category ("fault", "policy", ...). Shared by the flight
// recorder and the Chrome trace exporter.
const char* TraceCategoryName(sim::TraceCategory category);

}  // namespace hipec::obs

#endif  // HIPEC_OBS_FLIGHT_RECORDER_H_
