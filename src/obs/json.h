// A minimal JSON reader/writer for the observability layer: hipec-report parses bench
// JSON-line output with it, the Perfetto golden test validates exported traces with it, and
// the flight recorder uses the escaping helper when rendering dumps. Deliberately small —
// no external dependency, no DOM mutation API, parse-and-inspect only.
#ifndef HIPEC_OBS_JSON_H_
#define HIPEC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hipec::obs {

// A parsed JSON value. Objects keep insertion order (bench JSON lines are ordered and the
// report echoes them back in a stable order).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* Get(std::string_view key) const;

  // Convenience accessors with defaults (missing member / wrong kind -> fallback).
  double NumberOr(std::string_view key, double fallback) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
};

// Parses one complete JSON document (trailing whitespace allowed, trailing garbage is an
// error). On failure returns false and describes the problem and byte offset in *error.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Appends `s` with JSON string escaping ("", \\, control characters) — the writer-side
// counterpart, shared by the flight recorder and the Chrome trace exporter.
void AppendJsonEscaped(std::string* out, std::string_view s);

}  // namespace hipec::obs

#endif  // HIPEC_OBS_JSON_H_
