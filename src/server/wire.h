// The hipecd wire protocol: what crosses the process boundary between a client and the
// policy server (docs/SERVER.md).
//
// Two planes, two encodings:
//
//   * Control plane — length-prefixed frames over a Unix-domain stream socket. Explicit
//     little-endian serialization (no struct dumps), every decoder bounds-checked: a
//     malformed or truncated frame yields a DecodeStatus, never undefined behaviour. This is
//     the surface an untrusted client can attack, so the decoders are fuzzed
//     (tests/server_wire_test.cc) and the daemon's contract is reject-and-reply, never
//     crash.
//   * Data plane — fixed-size Request/Completion records in the shared-memory rings
//     (ring.h). These are plain PODs because both sides map the same bytes; validation
//     happens semantically at drain time (unknown opcode, page outside the region), not at
//     the byte level.
#ifndef HIPEC_SERVER_WIRE_H_
#define HIPEC_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace hipec::server {

// ---------------------------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------------------------

inline constexpr uint32_t kWireMagic = 0x48504331;  // "HPC1"
inline constexpr uint32_t kWireVersion = 1;
// Hard ceiling on a control frame's payload. A policy program is at most a few thousand
// words; anything larger is a malformed (or hostile) length prefix and is rejected before
// allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;
// Ceiling on embedded strings and program word counts, far above anything legitimate.
inline constexpr uint32_t kMaxWireString = 4096;
inline constexpr uint32_t kMaxProgramEvents = 64;
inline constexpr uint32_t kMaxEventWords = 65536;

enum class MsgType : uint16_t {
  kHello = 1,        // client -> server: version handshake
  kHelloAck = 2,     // server -> client
  kInstall = 3,      // client -> server: policy program + region shape + QoS class
  kInstallAck = 4,   // server -> client: container id / error; ring fd rides via SCM_RIGHTS
  kTeardown = 5,     // client -> server: tear the region/container down
  kTeardownAck = 6,  // server -> client
  kPing = 7,         // client -> server: heartbeat
  kPong = 8,         // server -> client
  kGoodbye = 9,      // client -> server: orderly disconnect
  kError = 10,       // server -> client: protocol-level rejection (connection stays up)
};

// Frame = header then payload. `length` counts payload bytes only.
struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint32_t length = 0;
  uint16_t type = 0;
  uint16_t reserved = 0;
};
inline constexpr size_t kFrameHeaderBytes = 12;

struct HelloMsg {
  uint32_t version = kWireVersion;
  uint64_t client_pid = 0;
  uint32_t qos_weight = 1;
  std::string client_name;
};

struct HelloAckMsg {
  uint32_t version = kWireVersion;
  uint64_t server_pid = 0;
  uint32_t max_clients = 0;
};

// The serialized form of a core::PolicyProgram: per-event raw word vectors (word 0 of a
// non-empty event is the HiPEC magic). The server re-validates everything through the
// engine's decode-and-verify pass — this carries bytes, it does not vouch for them.
struct WireProgram {
  std::vector<std::vector<uint32_t>> events;
};

struct InstallMsg {
  uint64_t region_pages = 0;
  uint32_t min_frames = 0;
  uint32_t qos_weight = 1;
  int64_t timeout_ns = 0;
  int64_t free_target = 0;
  int64_t inactive_target = 0;
  int64_t reserved_target = 0;
  int64_t request_size = 16;
  uint32_t user_queue_count = 0;
  WireProgram program;
};

struct InstallAckMsg {
  uint8_t ok = 0;
  std::string error;
  uint64_t container_id = 0;
  uint64_t region_addr = 0;
  uint32_t ring_slots = 0;  // per-direction slot count of the ring whose fd accompanies this
};

struct TeardownMsg {
  uint64_t container_id = 0;
};

struct TeardownAckMsg {
  uint8_t ok = 0;
  std::string error;
};

struct PingMsg {
  uint64_t seq = 0;
};

struct PongMsg {
  uint64_t seq = 0;
};

struct GoodbyeMsg {};

struct ErrorMsg {
  uint32_t code = 0;
  std::string message;
};

// ---------------------------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------------------------

enum class DecodeStatus {
  kOk,
  kTruncated,      // fewer bytes than the encoding claims
  kBadMagic,       // header magic mismatch
  kBadType,        // unknown MsgType
  kBadLength,      // length prefix exceeds limits or disagrees with the payload
  kMalformed,      // payload structure invalid (oversized string, word-count overflow, ...)
  kTrailingBytes,  // payload longer than the message's encoding
};

const char* DecodeStatusName(DecodeStatus status);

// Appends one full frame (header + payload) for the message to `out`.
void EncodeHello(const HelloMsg& msg, std::string* out);
void EncodeHelloAck(const HelloAckMsg& msg, std::string* out);
void EncodeInstall(const InstallMsg& msg, std::string* out);
void EncodeInstallAck(const InstallAckMsg& msg, std::string* out);
void EncodeTeardown(const TeardownMsg& msg, std::string* out);
void EncodeTeardownAck(const TeardownAckMsg& msg, std::string* out);
void EncodePing(const PingMsg& msg, std::string* out);
void EncodePong(const PongMsg& msg, std::string* out);
void EncodeGoodbye(const GoodbyeMsg& msg, std::string* out);
void EncodeError(const ErrorMsg& msg, std::string* out);

// Parses a frame header from the first kFrameHeaderBytes of `data`. kTruncated if shorter.
DecodeStatus DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out);

// One fully decoded control frame. Exactly the member matching `type` is meaningful.
struct DecodedFrame {
  MsgType type = MsgType::kError;
  HelloMsg hello;
  HelloAckMsg hello_ack;
  InstallMsg install;
  InstallAckMsg install_ack;
  TeardownMsg teardown;
  TeardownAckMsg teardown_ack;
  PingMsg ping;
  PongMsg pong;
  GoodbyeMsg goodbye;
  ErrorMsg error;
};

// Decodes the payload of a frame whose header already passed DecodeFrameHeader. `data`/`len`
// are the payload bytes (exactly header.length of them).
DecodeStatus DecodePayload(const FrameHeader& header, const uint8_t* data, size_t len,
                           DecodedFrame* out);

// ---------------------------------------------------------------------------------------------
// Data plane (shared-memory ring records)
// ---------------------------------------------------------------------------------------------

enum RequestOp : uint16_t {
  kOpNop = 0,    // completes immediately (latency probe / heartbeat)
  kOpTouch = 1,  // one reference to `page`; kReqFlagWrite selects a store
  kOpFlush = 2,  // asynchronous write-back of `page` if resident and dirty
  kOpLimit = 3,  // first invalid opcode — anything >= this is malformed
};

inline constexpr uint16_t kReqFlagWrite = 1u << 0;

struct Request {
  uint64_t seq = 0;   // client-assigned; echoed in the completion
  uint16_t op = kOpNop;
  uint16_t flags = 0;
  uint32_t page = 0;  // page index within the client's region
  uint64_t arg = 0;   // op-specific (unused today; must be 0)
};
static_assert(sizeof(Request) == 24, "Request is part of the shared-memory ABI");

enum CompletionStatus : uint32_t {
  kStatusOk = 0,
  kStatusBadRequest = 1,  // malformed record: unknown op, page out of range, nonzero arg
  kStatusTerminated = 2,  // the task died mid-request (checker kill, policy error)
  kStatusShutdown = 3,    // server is shutting down; request was not executed
};

inline constexpr uint32_t kCompFlagFaulted = 1u << 0;  // the touch took a page fault

struct Completion {
  uint64_t seq = 0;
  uint32_t status = kStatusOk;
  uint16_t op = kOpNop;
  uint16_t flags = 0;
  uint64_t service_ns = 0;  // host-clock service latency observed by the drain loop
};
static_assert(sizeof(Completion) == 24, "Completion is part of the shared-memory ABI");

}  // namespace hipec::server

#endif  // HIPEC_SERVER_WIRE_H_
