#include "server/sockio.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hipec::server {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool FillAddr(const std::string& path, struct sockaddr_un* addr, std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path empty or too long for sockaddr_un";
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int ListenUnix(const std::string& path, std::string* error) {
  struct sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) {
    return -1;
  }
  int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  unlink(path.c_str());
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = Errno("bind");
    close(fd);
    return -1;
  }
  if (listen(fd, 128) != 0) {
    *error = Errno("listen");
    close(fd);
    unlink(path.c_str());
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path, std::string* error) {
  struct sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) {
    return -1;
  }
  int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = Errno("connect");
    close(fd);
    return -1;
  }
  return fd;
}

bool ReadFull(int fd, void* buf, size_t len) {
  int ignored = -1;
  bool ok = ReadFullCaptureFd(fd, buf, len, &ignored);
  if (ignored >= 0) {
    close(ignored);  // unexpected descriptor on a plain read — do not leak it
  }
  return ok;
}

bool ReadFullCaptureFd(int fd, void* buf, size_t len, int* captured_fd) {
  *captured_fd = -1;
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < len) {
    struct iovec iov;
    iov.iov_base = p + got;
    iov.iov_len = len - got;
    alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    ssize_t n = recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF
    }
    for (struct cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr; c = CMSG_NXTHDR(&msg, c)) {
      if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SCM_RIGHTS) {
        int passed;
        std::memcpy(&passed, CMSG_DATA(c), sizeof(int));
        if (*captured_fd >= 0) {
          close(passed);  // keep at most one; the protocol never sends more
        } else {
          *captured_fd = passed;
        }
      }
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* buf, size_t len) {
  return WriteAllWithFd(fd, buf, len, -1);
}

bool WriteAllWithFd(int fd, const void* buf, size_t len, int pass_fd) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  bool fd_pending = pass_fd >= 0;
  while (sent < len) {
    struct iovec iov;
    iov.iov_base = const_cast<uint8_t*>(p + sent);
    iov.iov_len = len - sent;
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
    if (fd_pending) {
      std::memset(control, 0, sizeof(control));
      msg.msg_control = control;
      msg.msg_controllen = sizeof(control);
      struct cmsghdr* c = CMSG_FIRSTHDR(&msg);
      c->cmsg_level = SOL_SOCKET;
      c->cmsg_type = SCM_RIGHTS;
      c->cmsg_len = CMSG_LEN(sizeof(int));
      std::memcpy(CMSG_DATA(c), &pass_fd, sizeof(int));
    }
    ssize_t n = sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n > 0) {
      fd_pending = false;  // the descriptor travels with the first accepted segment
    }
    sent += static_cast<size_t>(n);
  }
  // Frames are never empty (the 12-byte header always travels), so a pending descriptor
  // cannot survive the loop.
  return true;
}

}  // namespace hipec::server
