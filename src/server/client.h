// hipec::server::Client — the library an application links to talk to hipecd
// (docs/SERVER.md). Wraps the control socket (handshake, policy install, teardown,
// heartbeat) and the shared-memory ring (submissions, completions, bounded-backoff
// backpressure) behind a blocking-friendly API. One Client == one connection == at most one
// installed region; not thread-safe (the ring is SPSC per side by construction).
#ifndef HIPEC_SERVER_CLIENT_H_
#define HIPEC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "hipec/program.h"
#include "server/ring.h"
#include "server/wire.h"

namespace hipec::server {

// Converts an in-process policy program to its wire form (raw per-event words).
WireProgram ToWireProgram(const core::PolicyProgram& program);

// Mirrors the InstallMsg knobs a client chooses; the program rides alongside.
struct ClientInstallOptions {
  uint64_t region_pages = 0;
  uint32_t min_frames = 0;
  uint32_t qos_weight = 0;  // 0 = inherit the hello weight
  int64_t timeout_ns = 0;
  int64_t free_target = 0;
  int64_t inactive_target = 0;
  int64_t reserved_target = 0;
  int64_t request_size = 16;
  uint32_t user_queue_count = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and completes the hello/version handshake.
  bool Connect(const std::string& socket_path, const std::string& name, uint32_t qos_weight,
               std::string* error);

  // Installs `program` over a fresh region; attaches the ring fd from the ack. At most one
  // install per connection.
  bool Install(const core::PolicyProgram& program, const ClientInstallOptions& options,
               std::string* error);

  // --- data plane ----------------------------------------------------------------------------

  // Submits one record, spinning with bounded backoff while the ring is full (each backoff
  // round bumps the shared sub_stalls counter the daemon aggregates). False if the ring
  // stayed full past the bound or the client is not installed.
  bool SubmitTouch(uint32_t page, bool is_write);
  bool SubmitFlush(uint32_t page);
  bool SubmitNop();
  // Raw-record submission for tests that craft malformed requests deliberately.
  bool SubmitRaw(const Request& request);

  // Pops up to `max` completions immediately available.
  size_t PollCompletions(Completion* out, size_t max);

  // Reaps completions until every submitted request has completed or `timeout_ns` of no
  // progress elapses. Returns true when fully drained.
  bool WaitForCompletions(uint64_t timeout_ns);

  // --- control plane -------------------------------------------------------------------------

  bool Ping(std::string* error);
  // Tears the installed container down (frames reclaimed server-side).
  bool Teardown(std::string* error);
  // Orderly disconnect: goodbye + close. Without this, the daemon counts a client death.
  void Goodbye();
  // Hard close, no goodbye — from the daemon's view, a crash.
  void Close();

  bool connected() const { return sock_ >= 0; }
  bool installed() const { return installed_; }
  uint64_t container_id() const { return container_id_; }
  uint64_t region_pages() const { return region_pages_; }
  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  // Completions that came back kStatusOk / other.
  uint64_t completed_ok() const { return completed_ok_; }
  uint64_t completed_rejected() const { return completed_rejected_; }
  // Submission-side backpressure stalls this client has burned through.
  uint64_t backpressure_stalls() const { return stalls_; }

 private:
  // Reads one frame (optionally capturing a passed fd), decoding into `frame`.
  bool ReadFrame(DecodedFrame* frame, int* captured_fd, std::string* error);
  void AccountCompletion(const Completion& completion);

  int sock_ = -1;
  bool installed_ = false;
  RingPair ring_;
  uint64_t container_id_ = 0;
  uint64_t region_pages_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t next_ping_ = 1;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t completed_ok_ = 0;
  uint64_t completed_rejected_ = 0;
  uint64_t stalls_ = 0;
};

}  // namespace hipec::server

#endif  // HIPEC_SERVER_CLIENT_H_
