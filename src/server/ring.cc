#include "server/ring.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hipec::server {

namespace {

constexpr uint32_t kMaxRingSlots = 1u << 16;

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

RingLayout RingLayout::For(uint32_t slots) {
  RingLayout layout;
  layout.header_bytes = AlignUp(sizeof(RingHeader), 64);
  layout.sub_offset = layout.header_bytes;
  layout.comp_offset = AlignUp(layout.sub_offset + slots * sizeof(Request), 64);
  layout.total_bytes =
      AlignUp(layout.comp_offset + slots * sizeof(Completion),
              static_cast<size_t>(sysconf(_SC_PAGESIZE) > 0 ? sysconf(_SC_PAGESIZE) : 4096));
  return layout;
}

RingPair::~RingPair() { Close(); }

RingPair::RingPair(RingPair&& other) noexcept { *this = std::move(other); }

RingPair& RingPair::operator=(RingPair&& other) noexcept {
  if (this != &other) {
    Close();
    header_ = std::exchange(other.header_, nullptr);
    sub_ = std::exchange(other.sub_, nullptr);
    comp_ = std::exchange(other.comp_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void RingPair::Close() {
  if (header_ != nullptr) {
    munmap(header_, mapped_bytes_);
    header_ = nullptr;
    sub_ = nullptr;
    comp_ = nullptr;
    mapped_bytes_ = 0;
  }
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool RingPair::Create(uint32_t slots, std::string* error) {
  Close();
  if (!IsPowerOfTwo(slots) || slots > kMaxRingSlots) {
    *error = "ring slot count must be a power of two <= 65536";
    return false;
  }
  RingLayout layout = RingLayout::For(slots);
  int fd = memfd_create("hipec-ring", MFD_CLOEXEC | MFD_ALLOW_SEALING);
  if (fd < 0) {
    *error = Errno("memfd_create");
    return false;
  }
  if (ftruncate(fd, static_cast<off_t>(layout.total_bytes)) != 0) {
    *error = Errno("ftruncate");
    close(fd);
    return false;
  }
  // The fd crosses the trust boundary writable (the client must map and write its ring
  // side), so freeze the segment's size before it leaves this process: without the seals a
  // hostile client could ftruncate the segment and SIGBUS the daemon's next ring access.
  // F_SEAL_WRITE is deliberately absent — writes are the whole point.
  if (fcntl(fd, F_ADD_SEALS, F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_SEAL) != 0) {
    *error = Errno("F_ADD_SEALS");
    close(fd);
    return false;
  }
  void* map = mmap(nullptr, layout.total_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    *error = Errno("mmap");
    close(fd);
    return false;
  }
  fd_ = fd;
  mapped_bytes_ = layout.total_bytes;
  header_ = new (map) RingHeader();
  header_->magic = kRingMagic;
  header_->version = kRingVersion;
  header_->slots = slots;
  sub_ = reinterpret_cast<Request*>(static_cast<uint8_t*>(map) + layout.sub_offset);
  comp_ = reinterpret_cast<Completion*>(static_cast<uint8_t*>(map) + layout.comp_offset);
  return true;
}

bool RingPair::Attach(int fd, std::string* error) {
  Close();
  fd_ = fd;  // owned from here on, including on failure
  if (fd < 0) {
    *error = "attach: invalid fd";
    return false;
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    *error = Errno("fstat");
    return false;
  }
  if (st.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    *error = "attach: segment smaller than the ring header";
    return false;
  }
  size_t total = static_cast<size_t>(st.st_size);
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    *error = Errno("mmap");
    return false;
  }
  RingHeader* header = static_cast<RingHeader*>(map);
  if (header->magic != kRingMagic || header->version != kRingVersion) {
    *error = "attach: ring magic/version mismatch";
    munmap(map, total);
    return false;
  }
  uint32_t slots = header->slots;
  if (!IsPowerOfTwo(slots) || slots > kMaxRingSlots) {
    *error = "attach: bad slot count";
    munmap(map, total);
    return false;
  }
  RingLayout layout = RingLayout::For(slots);
  if (total < layout.total_bytes) {
    *error = "attach: segment smaller than its header claims";
    munmap(map, total);
    return false;
  }
  header_ = header;
  mapped_bytes_ = total;
  sub_ = reinterpret_cast<Request*>(static_cast<uint8_t*>(map) + layout.sub_offset);
  comp_ = reinterpret_cast<Completion*>(static_cast<uint8_t*>(map) + layout.comp_offset);
  return true;
}

bool RingPair::TryPushRequest(const Request& request) {
  const uint32_t slots = header_->slots;
  uint32_t tail = header_->sub_tail.load(std::memory_order_relaxed);
  uint32_t head = header_->sub_head.load(std::memory_order_acquire);
  if (tail - head >= slots) {
    return false;
  }
  sub_[tail & (slots - 1)] = request;
  header_->sub_tail.store(tail + 1, std::memory_order_release);
  return true;
}

size_t RingPair::PopRequests(Request* out, size_t max) {
  const uint32_t slots = header_->slots;
  uint32_t head = header_->sub_head.load(std::memory_order_relaxed);
  uint32_t tail = header_->sub_tail.load(std::memory_order_acquire);
  size_t avail = tail - head;
  size_t n = avail < max ? avail : max;
  for (size_t i = 0; i < n; ++i) {
    out[i] = sub_[(head + i) & (slots - 1)];
  }
  if (n > 0) {
    header_->sub_head.store(head + static_cast<uint32_t>(n), std::memory_order_release);
  }
  return n;
}

uint32_t RingPair::PendingRequests() const {
  return header_->sub_tail.load(std::memory_order_acquire) -
         header_->sub_head.load(std::memory_order_acquire);
}

bool RingPair::TryPushCompletion(const Completion& completion) {
  const uint32_t slots = header_->slots;
  uint32_t tail = header_->comp_tail.load(std::memory_order_relaxed);
  uint32_t head = header_->comp_head.load(std::memory_order_acquire);
  if (tail - head >= slots) {
    return false;
  }
  comp_[tail & (slots - 1)] = completion;
  header_->comp_tail.store(tail + 1, std::memory_order_release);
  return true;
}

size_t RingPair::PopCompletions(Completion* out, size_t max) {
  const uint32_t slots = header_->slots;
  uint32_t head = header_->comp_head.load(std::memory_order_relaxed);
  uint32_t tail = header_->comp_tail.load(std::memory_order_acquire);
  size_t avail = tail - head;
  size_t n = avail < max ? avail : max;
  for (size_t i = 0; i < n; ++i) {
    out[i] = comp_[(head + i) & (slots - 1)];
  }
  if (n > 0) {
    header_->comp_head.store(head + static_cast<uint32_t>(n), std::memory_order_release);
  }
  return n;
}

uint32_t RingPair::PendingCompletions() const {
  return header_->comp_tail.load(std::memory_order_acquire) -
         header_->comp_head.load(std::memory_order_acquire);
}

uint64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace hipec::server
