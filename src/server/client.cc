#include "server/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "server/sockio.h"

namespace hipec::server {

namespace {

// Submission backoff: up to kSubmitAttempts rounds of 10us before SubmitX reports failure.
// Each round is one recorded backpressure stall.
constexpr int kSubmitAttempts = 100'000;  // ~1s worst case

}  // namespace

WireProgram ToWireProgram(const core::PolicyProgram& program) {
  WireProgram wire;
  wire.events.resize(static_cast<size_t>(program.event_limit()));
  for (int e = 0; e < program.event_limit(); ++e) {
    if (program.HasEvent(e)) {
      wire.events[static_cast<size_t>(e)] = program.event(e).words;
    }
  }
  return wire;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (sock_ >= 0) {
    close(sock_);
    sock_ = -1;
  }
  ring_.Close();
  installed_ = false;
}

void Client::Goodbye() {
  if (sock_ >= 0) {
    GoodbyeMsg msg;
    std::string out;
    EncodeGoodbye(msg, &out);
    WriteAll(sock_, out.data(), out.size());
  }
  Close();
}

bool Client::ReadFrame(DecodedFrame* frame, int* captured_fd, std::string* error) {
  int fd = -1;
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!ReadFullCaptureFd(sock_, header_bytes, sizeof(header_bytes), &fd)) {
    *error = "connection closed";
    return false;
  }
  FrameHeader header;
  DecodeStatus status = DecodeFrameHeader(header_bytes, sizeof(header_bytes), &header);
  if (status != DecodeStatus::kOk) {
    if (fd >= 0) {
      close(fd);
    }
    *error = std::string("bad frame from server: ") + DecodeStatusName(status);
    return false;
  }
  std::vector<uint8_t> payload(header.length);
  if (header.length > 0) {
    int fd2 = -1;
    bool ok = ReadFullCaptureFd(sock_, payload.data(), payload.size(), &fd2);
    if (fd < 0) {
      fd = fd2;
    } else if (fd2 >= 0) {
      close(fd2);
    }
    if (!ok) {
      if (fd >= 0) {
        close(fd);
      }
      *error = "connection closed mid-frame";
      return false;
    }
  }
  status = DecodePayload(header, payload.data(), payload.size(), frame);
  if (status != DecodeStatus::kOk) {
    if (fd >= 0) {
      close(fd);
    }
    *error = std::string("bad payload from server: ") + DecodeStatusName(status);
    return false;
  }
  if (captured_fd != nullptr) {
    *captured_fd = fd;
  } else if (fd >= 0) {
    close(fd);
  }
  return true;
}

bool Client::Connect(const std::string& socket_path, const std::string& name,
                     uint32_t qos_weight, std::string* error) {
  if (sock_ >= 0) {
    *error = "already connected";
    return false;
  }
  sock_ = ConnectUnix(socket_path, error);
  if (sock_ < 0) {
    return false;
  }
  HelloMsg hello;
  hello.client_pid = static_cast<uint64_t>(getpid());
  hello.qos_weight = qos_weight;
  hello.client_name = name;
  std::string out;
  EncodeHello(hello, &out);
  if (!WriteAll(sock_, out.data(), out.size())) {
    *error = "write failed during handshake";
    Close();
    return false;
  }
  DecodedFrame frame;
  if (!ReadFrame(&frame, nullptr, error)) {
    Close();
    return false;
  }
  if (frame.type == MsgType::kError) {
    *error = "server rejected hello: " + frame.error.message;
    Close();
    return false;
  }
  if (frame.type != MsgType::kHelloAck || frame.hello_ack.version != kWireVersion) {
    *error = "handshake failed (unexpected reply)";
    Close();
    return false;
  }
  return true;
}

bool Client::Install(const core::PolicyProgram& program, const ClientInstallOptions& options,
                     std::string* error) {
  if (sock_ < 0) {
    *error = "not connected";
    return false;
  }
  if (installed_) {
    *error = "already installed";
    return false;
  }
  InstallMsg msg;
  msg.region_pages = options.region_pages;
  msg.min_frames = options.min_frames;
  msg.qos_weight = options.qos_weight;
  msg.timeout_ns = options.timeout_ns;
  msg.free_target = options.free_target;
  msg.inactive_target = options.inactive_target;
  msg.reserved_target = options.reserved_target;
  msg.request_size = options.request_size;
  msg.user_queue_count = options.user_queue_count;
  msg.program = ToWireProgram(program);
  std::string out;
  EncodeInstall(msg, &out);
  if (!WriteAll(sock_, out.data(), out.size())) {
    *error = "write failed";
    return false;
  }
  DecodedFrame frame;
  int ring_fd = -1;
  if (!ReadFrame(&frame, &ring_fd, error)) {
    return false;
  }
  if (frame.type == MsgType::kError) {
    if (ring_fd >= 0) {
      close(ring_fd);
    }
    *error = "server error: " + frame.error.message;
    return false;
  }
  if (frame.type != MsgType::kInstallAck) {
    if (ring_fd >= 0) {
      close(ring_fd);
    }
    *error = "unexpected reply to install";
    return false;
  }
  if (frame.install_ack.ok == 0) {
    if (ring_fd >= 0) {
      close(ring_fd);
    }
    *error = "install rejected: " + frame.install_ack.error;
    return false;
  }
  if (ring_fd < 0) {
    *error = "install ack carried no ring descriptor";
    return false;
  }
  if (!ring_.Attach(ring_fd, error)) {
    return false;
  }
  if (ring_.slots() != frame.install_ack.ring_slots) {
    *error = "ring slot count disagrees with the install ack";
    ring_.Close();
    return false;
  }
  container_id_ = frame.install_ack.container_id;
  region_pages_ = msg.region_pages;
  installed_ = true;
  ring_.header()->client_beat_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  return true;
}

bool Client::SubmitRaw(const Request& request) {
  if (!installed_) {
    return false;
  }
  for (int attempt = 0; attempt < kSubmitAttempts; ++attempt) {
    if (ring_.TryPushRequest(request)) {
      ++submitted_;
      ring_.header()->client_beat_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
      return true;
    }
    // Ring full: bounded backoff, publishing the stall where the daemon can see it. Reap a
    // few completions while waiting — the usual reason the submission ring is full is that
    // the completion ring is too.
    ++stalls_;
    ring_.header()->sub_stalls.fetch_add(1, std::memory_order_relaxed);
    Completion reaped[16];
    if (PollCompletions(reaped, 16) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  }
  return false;
}

bool Client::SubmitTouch(uint32_t page, bool is_write) {
  Request request;
  request.seq = next_seq_++;
  request.op = kOpTouch;
  request.flags = is_write ? kReqFlagWrite : 0;
  request.page = page;
  return SubmitRaw(request);
}

bool Client::SubmitFlush(uint32_t page) {
  Request request;
  request.seq = next_seq_++;
  request.op = kOpFlush;
  request.page = page;
  return SubmitRaw(request);
}

bool Client::SubmitNop() {
  Request request;
  request.seq = next_seq_++;
  request.op = kOpNop;
  return SubmitRaw(request);
}

void Client::AccountCompletion(const Completion& completion) {
  ++completed_;
  if (completion.status == kStatusOk) {
    ++completed_ok_;
  } else {
    ++completed_rejected_;
  }
}

size_t Client::PollCompletions(Completion* out, size_t max) {
  if (!installed_) {
    return 0;
  }
  size_t n = ring_.PopCompletions(out, max);
  for (size_t i = 0; i < n; ++i) {
    AccountCompletion(out[i]);
  }
  return n;
}

bool Client::WaitForCompletions(uint64_t timeout_ns) {
  Completion batch[64];
  uint64_t last_progress = MonotonicNowNs();
  while (completed_ < submitted_) {
    size_t n = PollCompletions(batch, sizeof(batch) / sizeof(batch[0]));
    if (n > 0) {
      last_progress = MonotonicNowNs();
      continue;
    }
    if (MonotonicNowNs() - last_progress > timeout_ns) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  return true;
}

bool Client::Ping(std::string* error) {
  if (sock_ < 0) {
    *error = "not connected";
    return false;
  }
  PingMsg ping{next_ping_++};
  std::string out;
  EncodePing(ping, &out);
  if (!WriteAll(sock_, out.data(), out.size())) {
    *error = "write failed";
    return false;
  }
  DecodedFrame frame;
  if (!ReadFrame(&frame, nullptr, error)) {
    return false;
  }
  if (frame.type != MsgType::kPong || frame.pong.seq != ping.seq) {
    *error = "bad pong";
    return false;
  }
  return true;
}

bool Client::Teardown(std::string* error) {
  if (sock_ < 0 || !installed_) {
    *error = "nothing to tear down";
    return false;
  }
  TeardownMsg msg{container_id_};
  std::string out;
  EncodeTeardown(msg, &out);
  if (!WriteAll(sock_, out.data(), out.size())) {
    *error = "write failed";
    return false;
  }
  DecodedFrame frame;
  if (!ReadFrame(&frame, nullptr, error)) {
    return false;
  }
  if (frame.type != MsgType::kTeardownAck || frame.teardown_ack.ok == 0) {
    *error = frame.type == MsgType::kTeardownAck ? frame.teardown_ack.error
                                                 : "unexpected reply to teardown";
    return false;
  }
  installed_ = false;
  ring_.Close();
  return true;
}

}  // namespace hipec::server
