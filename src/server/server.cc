#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "server/sockio.h"

namespace hipec::server {

namespace {

// Control plane.
const sim::CounterId kCtrConnections = sim::InternCounter("server.connections");
const sim::CounterId kCtrConnRejects = sim::InternCounter("server.connection_rejects");
const sim::CounterId kCtrMalformedFrames = sim::InternCounter("server.malformed_frames");
const sim::CounterId kCtrInstalls = sim::InternCounter("server.installs");
const sim::CounterId kCtrInstallRejects = sim::InternCounter("server.install_rejects");
const sim::CounterId kCtrTeardowns = sim::InternCounter("server.teardowns");
const sim::CounterId kCtrPings = sim::InternCounter("server.pings");
const sim::CounterId kCtrClientDeaths = sim::InternCounter("server.client_deaths");
const sim::CounterId kCtrHeartbeatTimeouts = sim::InternCounter("server.heartbeat_timeouts");
// Data plane.
const sim::CounterId kCtrRequests = sim::InternCounter("server.requests");
const sim::CounterId kCtrCompletions = sim::InternCounter("server.completions");
const sim::CounterId kCtrMalformedRequests = sim::InternCounter("server.malformed_requests");
const sim::CounterId kCtrBackpressureStalls =
    sim::InternCounter("server.backpressure_stalls");

const obs::ProbeId kProbeServiceNs = obs::InternProbe("server.drain.service_ns");
const obs::ProbeId kProbeBatch = obs::InternProbe("server.drain.batch");
const obs::ProbeId kProbeRingOccupancy = obs::InternProbe("server.drain.ring_occupancy");

constexpr uint32_t kMaxQosWeight = 64;
constexpr uint64_t kMaxRegionPages = 1u << 22;  // 16 GB of 4K pages — far above any test
constexpr size_t kMaxUserQueues = 8;
// Completion-push backoff: this many failed attempts (10us apart) before the record spills
// into the session's overflow queue and the pass stops popping new work.
constexpr int kPushAttempts = 64;

// Error codes in kError replies (diagnostic only; clients key off the message).
constexpr uint32_t kErrProtocol = 400;
constexpr uint32_t kErrVersion = 401;
constexpr uint32_t kErrState = 409;
constexpr uint32_t kErrCapacity = 503;

uint64_t NowNs() { return MonotonicNowNs(); }

}  // namespace

Server::Server(const ServerConfig& config) : config_(config) {
  mach::KernelParams params;
  params.total_frames = config_.total_frames;
  params.kernel_reserved_frames = config_.kernel_reserved_frames;
  params.hipec_build = true;
  params.exec_mode = sim::ExecMode::kRealThreads;
  params.jit_mode = config_.jit_mode;
  kernel_ = std::make_unique<mach::Kernel>(params);
  engine_ = std::make_unique<core::HipecEngine>(kernel_.get(), config_.manager);
  counters_.EnableConcurrent();
  probes_.EnableConcurrent();
  if (config_.drain_threads == 0) {
    config_.drain_threads = 1;
  }
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  listen_fd_ = ListenUnix(config_.socket_path, error);
  if (listen_fd_ < 0) {
    return false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  drain_threads_.reserve(config_.drain_threads);
  for (size_t i = 0; i < config_.drain_threads; ++i) {
    drain_threads_.emplace_back(&Server::DrainLoop, this);
  }
  if (config_.heartbeat_timeout_ns > 0) {
    reaper_thread_ = std::thread(&Server::ReaperLoop, this);
  }
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the accept thread, then every control thread; their exit paths run the teardown.
  shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions = sessions_;
  }
  for (auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->sock_mu);
    if (session->sock >= 0) {
      shutdown(session->sock, SHUT_RDWR);
    }
  }
  for (auto& session : sessions) {
    if (session->control_thread.joinable()) {
      session->control_thread.join();
    }
  }
  // Control threads are gone (every session torn down); now the data-plane threads.
  for (std::thread& t : drain_threads_) {
    t.join();
  }
  drain_threads_.clear();
  if (reaper_thread_.joinable()) {
    reaper_thread_.join();
  }
  // Sessions that retired before the snapshot above are on zombies_; join the stragglers.
  ReapZombieSessions();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
  unlink(config_.socket_path.c_str());
}

// ---------------------------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------------------------

void Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int sock = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (sock < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener shut down
    }
    counters_.Add(kCtrConnections);
    ReapZombieSessions();
    auto session = std::make_shared<Session>();
    session->sock = sock;
    // The heartbeat clock starts at accept: a connection holds a max_clients slot from here
    // on, so a client that never hellos or never installs still times out (ReaperLoop).
    session->last_beat_ns.store(NowNs(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.size() >= config_.max_clients) {
        counters_.Add(kCtrConnRejects);
        ErrorMsg err{kErrCapacity, "server full"};
        std::string frame;
        EncodeError(err, &frame);
        WriteAll(sock, frame.data(), frame.size());
        close(sock);
        continue;
      }
      session->id = next_session_id_++;
      session->name = "client#" + std::to_string(session->id);
      sessions_.push_back(session);
      session->control_thread = std::thread(&Server::ControlLoop, this, session);
    }
  }
}

void Server::ControlLoop(std::shared_ptr<Session> session) {
  Session& s = *session;
  bool orderly = false;
  for (;;) {
    uint8_t header_bytes[kFrameHeaderBytes];
    if (!ReadFull(s.sock, header_bytes, sizeof(header_bytes))) {
      break;  // EOF, error, or shutdown() from Stop/reaper
    }
    FrameHeader header;
    DecodeStatus status = DecodeFrameHeader(header_bytes, sizeof(header_bytes), &header);
    if (status != DecodeStatus::kOk) {
      // A bad header means the stream is out of sync; there is no way to find the next
      // frame boundary, so reject and disconnect.
      counters_.Add(kCtrMalformedFrames);
      SendError(s, kErrProtocol,
                std::string("bad frame header: ") + DecodeStatusName(status));
      break;
    }
    std::vector<uint8_t> payload(header.length);
    if (header.length > 0 && !ReadFull(s.sock, payload.data(), payload.size())) {
      break;
    }
    if (!HandleFrame(s, header, payload, &orderly)) {
      break;
    }
  }
  // Whatever ended the loop, the teardown is the same as a checker kill. EOF without a
  // goodbye while the server is running is a client death.
  if (!orderly && running_.load(std::memory_order_acquire)) {
    counters_.Add(kCtrClientDeaths);
    TeardownSession(s, "client died (connection lost)");
  } else {
    TeardownSession(s, orderly ? "client goodbye" : "server shutdown");
  }
  {
    std::lock_guard<std::mutex> lock(s.sock_mu);
    shutdown(s.sock, SHUT_RDWR);
    close(s.sock);
    s.sock = -1;
  }
  // Retire the session: out of sessions_ so its max_clients slot frees immediately, onto
  // zombies_ so the next accept (or Stop) joins this thread. One locked transition, so
  // every session is always on exactly one of the two lists.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
    zombies_.push_back(std::move(session));
  }
}

void Server::ReapZombieSessions() {
  std::vector<std::shared_ptr<Session>> zombies;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    zombies.swap(zombies_);
  }
  for (auto& session : zombies) {
    // A zombie parked itself as its control thread's last act, so this join is immediate.
    // joinable() guards sessions Stop already joined through its own snapshot.
    if (session->control_thread.joinable()) {
      session->control_thread.join();
    }
  }
}

bool Server::HandleFrame(Session& s, const FrameHeader& header,
                         const std::vector<uint8_t>& payload, bool* orderly) {
  DecodedFrame frame;
  DecodeStatus status = DecodePayload(header, payload.data(), payload.size(), &frame);
  if (status != DecodeStatus::kOk) {
    // The payload was fully consumed, so framing is intact: reject and keep serving.
    counters_.Add(kCtrMalformedFrames);
    SendError(s, kErrProtocol, std::string("bad ") + std::to_string(header.type) +
                                   " payload: " + DecodeStatusName(status));
    return true;
  }
  if (!s.hello_done && frame.type != MsgType::kHello) {
    counters_.Add(kCtrMalformedFrames);
    SendError(s, kErrState, "expected hello");
    return false;
  }
  switch (frame.type) {
    case MsgType::kHello: {
      if (s.hello_done) {
        counters_.Add(kCtrMalformedFrames);
        SendError(s, kErrState, "duplicate hello");
        return true;
      }
      if (frame.hello.version != kWireVersion) {
        SendError(s, kErrVersion,
                  "unsupported wire version " + std::to_string(frame.hello.version));
        return false;
      }
      if (!frame.hello.client_name.empty()) {
        s.name = frame.hello.client_name;
      }
      s.qos_weight = std::clamp<uint32_t>(frame.hello.qos_weight, 1, kMaxQosWeight);
      s.hello_done = true;
      s.last_beat_ns.store(NowNs(), std::memory_order_relaxed);
      HelloAckMsg ack;
      ack.server_pid = static_cast<uint64_t>(getpid());
      ack.max_clients = config_.max_clients;
      std::string out;
      EncodeHelloAck(ack, &out);
      return WriteAll(s.sock, out.data(), out.size());
    }
    case MsgType::kInstall:
      HandleInstall(s, frame.install);
      return true;
    case MsgType::kTeardown:
      HandleTeardown(s, frame.teardown);
      return true;
    case MsgType::kPing: {
      counters_.Add(kCtrPings);
      s.last_beat_ns.store(NowNs(), std::memory_order_relaxed);
      PongMsg pong{frame.ping.seq};
      std::string out;
      EncodePong(pong, &out);
      return WriteAll(s.sock, out.data(), out.size());
    }
    case MsgType::kGoodbye:
      *orderly = true;
      return false;
    default:
      // Server->client message types arriving from a client are protocol violations.
      counters_.Add(kCtrMalformedFrames);
      SendError(s, kErrProtocol, "unexpected message type from client");
      return true;
  }
}

void Server::HandleInstall(Session& s, const InstallMsg& msg) {
  InstallAckMsg ack;
  int ring_fd = -1;
  mach::Task* task = nullptr;
  do {
    if (s.installed.load(std::memory_order_relaxed) || s.torn_down) {
      ack.error = "session already has a container";
      break;
    }
    if (msg.region_pages == 0 || msg.region_pages > kMaxRegionPages) {
      ack.error = "region_pages out of range";
      break;
    }
    core::PolicyProgram program;
    bool program_ok = true;
    for (size_t e = 0; e < msg.program.events.size(); ++e) {
      if (msg.program.events[e].empty()) {
        continue;
      }
      if (e >= kMaxProgramEvents) {
        program_ok = false;
        break;
      }
      program.SetEventRaw(static_cast<int>(e), msg.program.events[e]);
    }
    if (!program_ok) {
      ack.error = "program event index out of range";
      break;
    }
    core::HipecOptions options;
    options.min_frames = static_cast<size_t>(msg.min_frames);
    options.timeout_ns = msg.timeout_ns;
    options.free_target = msg.free_target;
    options.inactive_target = msg.inactive_target;
    options.reserved_target = msg.reserved_target;
    options.request_size = msg.request_size;
    options.user_queue_count =
        std::min<size_t>(static_cast<size_t>(msg.user_queue_count), kMaxUserQueues);
    options.qos_weight =
        std::clamp<uint32_t>(msg.qos_weight != 0 ? msg.qos_weight : s.qos_weight, 1,
                             kMaxQosWeight);
    task = kernel_->CreateTask("hipecd:" + s.name);
    core::HipecRegion region;
    {
      // Registration runs concurrently with other sessions' faults: hold the world shared
      // for the kernel entry, exactly like an in-process thread calling the syscall.
      sim::SharedWorldGuard world(kernel_->world());
      region =
          engine_->VmAllocateHipec(task, msg.region_pages * mach::kPageSize, program, options);
    }
    if (!region.ok) {
      // The validator or admission said no. The task never got a region; retire it.
      counters_.Add(kCtrInstallRejects);
      {
        sim::SharedWorldGuard world(kernel_->world());
        kernel_->TerminateTask(task, "install rejected: " + region.error);
      }
      ack.error = region.error;
      break;
    }
    std::string ring_error;
    if (!s.ring.Create(config_.ring_slots, &ring_error)) {
      counters_.Add(kCtrInstallRejects);
      {
        sim::SharedWorldGuard world(kernel_->world());
        kernel_->TerminateTask(task, "ring allocation failed");
      }
      ack.error = ring_error;
      break;
    }
    s.ring_ready.store(true, std::memory_order_release);
    s.task = task;
    s.container_id = region.container->id();
    s.region_addr = region.addr;
    s.region_pages = msg.region_pages;
    s.qos_weight = options.qos_weight;
    s.ring.header()->client_beat_ns.store(NowNs(), std::memory_order_relaxed);
    counters_.Add(kCtrInstalls);
    ack.ok = 1;
    ack.container_id = s.container_id;
    ack.region_addr = s.region_addr;
    ack.ring_slots = s.ring.slots();
    ring_fd = s.ring.fd();
    // Publish to the drain threads only after every field above is in place.
    s.installed.store(true, std::memory_order_release);
  } while (false);
  std::string out;
  EncodeInstallAck(ack, &out);
  WriteAllWithFd(s.sock, out.data(), out.size(), ring_fd);
}

void Server::HandleTeardown(Session& s, const TeardownMsg& msg) {
  TeardownAckMsg ack;
  if (!s.installed.load(std::memory_order_relaxed) || msg.container_id != s.container_id) {
    ack.error = "no such container";
  } else {
    TeardownSession(s, "client teardown request");
    counters_.Add(kCtrTeardowns);
    ack.ok = 1;
  }
  std::string out;
  EncodeTeardownAck(ack, &out);
  WriteAll(s.sock, out.data(), out.size());
}

void Server::TeardownSession(Session& s, const std::string& reason) {
  if (s.task == nullptr) {
    s.dead.store(true, std::memory_order_release);
    return;
  }
  // Unpublish, then wait out any in-flight drain claim so no drain thread touches the ring
  // or the task while we reclaim. New claims stop at the installed/dead checks.
  s.installed.store(false, std::memory_order_release);
  s.dead.store(true, std::memory_order_release);
  while (s.draining.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  s.torn_down = true;
  {
    // The checker-kill path: terminate the task; region teardown returns every private
    // frame through OnRegionTeardown -> RemoveContainer.
    sim::SharedWorldGuard world(kernel_->world());
    if (!s.task->terminated()) {
      kernel_->TerminateTask(s.task, reason);
    }
  }
  // The ring mapping is NOT unmapped here: stats snapshots and the reaper read its header
  // racily against teardown, so the segment lives until the Session itself is destroyed
  // (RingPair's destructor, once the last snapshot shared_ptr drops after the control
  // thread retires the session from sessions_).
}

void Server::SendError(Session& s, uint32_t code, const std::string& message) {
  ErrorMsg err{code, message};
  std::string out;
  EncodeError(err, &out);
  WriteAll(s.sock, out.data(), out.size());
}

// ---------------------------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------------------------

void Server::DrainLoop() {
  std::vector<std::shared_ptr<Session>> snapshot;
  while (running_.load(std::memory_order_acquire)) {
    if (drain_paused_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      snapshot = sessions_;
    }
    size_t done = 0;
    for (auto& session : snapshot) {
      Session& s = *session;
      if (!s.installed.load(std::memory_order_acquire) ||
          s.dead.load(std::memory_order_acquire)) {
        continue;
      }
      if (s.draining.exchange(true, std::memory_order_acq_rel)) {
        continue;  // another drain thread owns this session right now
      }
      if (s.installed.load(std::memory_order_acquire) &&
          !s.dead.load(std::memory_order_acquire)) {
        done += DrainSession(s);
      }
      s.draining.store(false, std::memory_order_release);
    }
    if (done == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

size_t Server::DrainSession(Session& s) {
  // Deliver leftovers first: completion-ring pressure must reach the submission ring, so a
  // client that stops reaping cannot force unbounded daemon-side buffering.
  while (!s.overflow.empty()) {
    if (!s.ring.TryPushCompletion(s.overflow.front())) {
      return 0;
    }
    s.overflow.pop_front();
    counters_.Add(kCtrCompletions);
    s.completions_done.fetch_add(1, std::memory_order_relaxed);
  }
  const bool probes_on = obs::ProbesEnabled();
  size_t budget = config_.drain_batch * s.qos_weight;
  if (probes_on) {
    probes_.Record(kProbeRingOccupancy, s.ring.PendingRequests());
  }
  size_t done = 0;
  Request batch[64];
  while (budget > 0) {
    size_t want = std::min<size_t>(budget, sizeof(batch) / sizeof(batch[0]));
    size_t n = s.ring.PopRequests(batch, want);
    if (n == 0) {
      break;
    }
    counters_.Add(kCtrRequests, static_cast<int64_t>(n));
    if (probes_on) {
      probes_.Record(kProbeBatch, static_cast<int64_t>(n));
    }
    for (size_t i = 0; i < n; ++i) {
      Completion completion = ExecuteRequest(s, batch[i]);
      if (!DeliverCompletion(s, completion)) {
        return done;
      }
    }
    done += n;
    s.requests_done += n;
    budget -= n;
  }
  return done;
}

Completion Server::ExecuteRequest(Session& s, const Request& request) {
  Completion completion;
  completion.seq = request.seq;
  completion.op = request.op;
  const bool probes_on = obs::ProbesEnabled();
  const uint64_t start_ns = probes_on ? NowNs() : 0;
  if (request.op >= kOpLimit || request.arg != 0 ||
      (request.op != kOpNop && request.page >= s.region_pages)) {
    // Semantic validation of the shared-memory record: unknown opcode, nonzero reserved
    // field, or a page outside the installed region. Reject, never crash.
    completion.status = kStatusBadRequest;
    counters_.Add(kCtrMalformedRequests);
    s.malformed.fetch_add(1, std::memory_order_relaxed);
  } else {
    switch (request.op) {
      case kOpNop:
        completion.status = kStatusOk;
        break;
      case kOpTouch: {
        uint64_t vaddr = s.region_addr + static_cast<uint64_t>(request.page) * mach::kPageSize;
        bool ok = kernel_->Touch(s.task, vaddr, (request.flags & kReqFlagWrite) != 0);
        completion.status = ok ? kStatusOk : kStatusTerminated;
        break;
      }
      case kOpFlush: {
        uint64_t vaddr = s.region_addr + static_cast<uint64_t>(request.page) * mach::kPageSize;
        bool ok = kernel_->FlushAddress(s.task, vaddr);
        completion.status = ok ? kStatusOk : kStatusTerminated;
        break;
      }
      default:
        completion.status = kStatusBadRequest;
        break;
    }
  }
  if (probes_on) {
    completion.service_ns = NowNs() - start_ns;
    probes_.Record(kProbeServiceNs, static_cast<int64_t>(completion.service_ns));
    std::lock_guard<std::mutex> lock(s.lat_mu);
    s.latency.Record(static_cast<int64_t>(completion.service_ns));
  }
  return completion;
}

bool Server::DeliverCompletion(Session& s, const Completion& completion) {
  for (int attempt = 0; attempt < kPushAttempts; ++attempt) {
    if (s.ring.TryPushCompletion(completion)) {
      counters_.Add(kCtrCompletions);
      s.completions_done.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (s.dead.load(std::memory_order_acquire) ||
        !running_.load(std::memory_order_acquire)) {
      return false;
    }
    counters_.Add(kCtrBackpressureStalls);
    s.ring.header()->comp_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  // The client is not reaping. Spill and let the next pass retry before new work.
  s.overflow.push_back(completion);
  return true;
}

void Server::ReaperLoop() {
  const uint64_t timeout = config_.heartbeat_timeout_ns;
  const auto interval =
      std::chrono::nanoseconds(std::max<uint64_t>(timeout / 4, 1'000'000));
  std::vector<std::shared_ptr<Session>> snapshot;
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      snapshot = sessions_;
    }
    const uint64_t now = NowNs();
    for (auto& session : snapshot) {
      Session& s = *session;
      if (s.dead.load(std::memory_order_acquire) ||
          s.reaped.load(std::memory_order_acquire)) {
        continue;
      }
      // The clock starts at accept (AcceptLoop seeds last_beat_ns), so a session that
      // never hellos or never installs is reaped too — it holds a max_clients slot the
      // moment it connects, and without this it would hold it forever.
      uint64_t beat = s.last_beat_ns.load(std::memory_order_relaxed);
      if (s.ring_ready.load(std::memory_order_acquire)) {
        beat = std::max(beat,
                        s.ring.header()->client_beat_ns.load(std::memory_order_relaxed));
      }
      if (beat != 0 && now > beat && now - beat > timeout) {
        // Wedged or silently-gone client: force the death path. The control thread's read
        // fails once the socket shuts down and runs the same teardown as an EOF.
        counters_.Add(kCtrHeartbeatTimeouts);
        s.reaped.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(s.sock_mu);
        if (s.sock >= 0) {
          shutdown(s.sock, SHUT_RDWR);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------------------------

std::vector<ClientStats> Server::ClientStatsSnapshot() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    snapshot = sessions_;
  }
  std::vector<ClientStats> out;
  out.reserve(snapshot.size());
  for (auto& session : snapshot) {
    Session& s = *session;
    ClientStats stats;
    stats.id = s.id;
    stats.name = s.name;
    stats.qos_weight = s.qos_weight;
    stats.completions = s.completions_done.load(std::memory_order_relaxed);
    stats.malformed = s.malformed.load(std::memory_order_relaxed);
    stats.installed = s.installed.load(std::memory_order_acquire);
    stats.dead = s.dead.load(std::memory_order_acquire);
    if (s.ring_ready.load(std::memory_order_acquire)) {
      RingHeader* header = s.ring.header();
      stats.backpressure_stalls = header->sub_stalls.load(std::memory_order_relaxed) +
                                  header->comp_stalls.load(std::memory_order_relaxed);
    }
    // Every delivered completion answered exactly one request.
    stats.requests = stats.completions;
    {
      std::lock_guard<std::mutex> lock(s.lat_mu);
      stats.latency = s.latency;
    }
    out.push_back(std::move(stats));
  }
  return out;
}

size_t Server::LiveSessionCount() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  size_t live = 0;
  for (auto& session : sessions_) {
    if (session->installed.load(std::memory_order_acquire) &&
        !session->dead.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

size_t Server::DrainSessionOnceForTest(uint64_t session_id) {
  std::shared_ptr<Session> target;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& session : sessions_) {
      if (session->id == session_id) {
        target = session;
        break;
      }
    }
  }
  if (target == nullptr || !target->installed.load(std::memory_order_acquire) ||
      target->dead.load(std::memory_order_acquire)) {
    return 0;
  }
  // Claim like a drain thread would; spin-wait if one currently owns the session.
  while (target->draining.exchange(true, std::memory_order_acq_rel)) {
    std::this_thread::yield();
  }
  size_t done = 0;
  if (target->installed.load(std::memory_order_acquire) &&
      !target->dead.load(std::memory_order_acquire)) {
    done = DrainSession(*target);
  }
  target->draining.store(false, std::memory_order_release);
  return done;
}

}  // namespace hipec::server
