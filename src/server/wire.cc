#include "server/wire.h"

namespace hipec::server {

namespace {

// --- writers ---------------------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v & 0xffff));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Writes the frame header for `payload` then the payload itself.
void Frame(MsgType type, const std::string& payload, std::string* out) {
  PutU32(out, kWireMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU16(out, static_cast<uint16_t>(type));
  PutU16(out, 0);
  out->append(payload);
}

// --- bounds-checked reader -------------------------------------------------------------------

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > len_) {
      return false;
    }
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > len_) {
      return false;
    }
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    uint16_t lo;
    uint16_t hi;
    if (!U16(&lo) || !U16(&hi)) {
      return false;
    }
    *v = static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t lo;
    uint32_t hi;
    if (!U32(&lo) || !U32(&hi)) {
      return false;
    }
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) {
      return false;
    }
    *v = static_cast<int64_t>(u);
    return true;
  }
  // Length-prefixed string, capped so a hostile length cannot force a huge allocation.
  bool Str(std::string* s, bool* malformed) {
    uint32_t n;
    if (!U32(&n)) {
      return false;
    }
    if (n > kMaxWireString) {
      *malformed = true;
      return false;
    }
    if (pos_ + n > len_) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool done() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Shared tail handling: a reader that ran dry mid-message is kTruncated (or kMalformed if a
// cap tripped); leftover bytes are kTrailingBytes.
DecodeStatus Finish(const Reader& r, bool ok, bool malformed) {
  if (!ok) {
    return malformed ? DecodeStatus::kMalformed : DecodeStatus::kTruncated;
  }
  if (!r.done()) {
    return DecodeStatus::kTrailingBytes;
  }
  return DecodeStatus::kOk;
}

void PutProgram(const WireProgram& program, std::string* out) {
  PutU32(out, static_cast<uint32_t>(program.events.size()));
  for (const std::vector<uint32_t>& words : program.events) {
    PutU32(out, static_cast<uint32_t>(words.size()));
    for (uint32_t w : words) {
      PutU32(out, w);
    }
  }
}

bool ReadProgram(Reader* r, WireProgram* program, bool* malformed) {
  uint32_t events;
  if (!r->U32(&events)) {
    return false;
  }
  if (events > kMaxProgramEvents) {
    *malformed = true;
    return false;
  }
  program->events.clear();
  program->events.reserve(events);
  for (uint32_t e = 0; e < events; ++e) {
    uint32_t count;
    if (!r->U32(&count)) {
      return false;
    }
    if (count > kMaxEventWords) {
      *malformed = true;
      return false;
    }
    std::vector<uint32_t> words;
    words.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t w;
      if (!r->U32(&w)) {
        return false;
      }
      words.push_back(w);
    }
    program->events.push_back(std::move(words));
  }
  return true;
}

}  // namespace

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadType:
      return "bad-type";
    case DecodeStatus::kBadLength:
      return "bad-length";
    case DecodeStatus::kMalformed:
      return "malformed";
    case DecodeStatus::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

void EncodeHello(const HelloMsg& msg, std::string* out) {
  std::string p;
  PutU32(&p, msg.version);
  PutU64(&p, msg.client_pid);
  PutU32(&p, msg.qos_weight);
  PutStr(&p, msg.client_name);
  Frame(MsgType::kHello, p, out);
}

void EncodeHelloAck(const HelloAckMsg& msg, std::string* out) {
  std::string p;
  PutU32(&p, msg.version);
  PutU64(&p, msg.server_pid);
  PutU32(&p, msg.max_clients);
  Frame(MsgType::kHelloAck, p, out);
}

void EncodeInstall(const InstallMsg& msg, std::string* out) {
  std::string p;
  PutU64(&p, msg.region_pages);
  PutU32(&p, msg.min_frames);
  PutU32(&p, msg.qos_weight);
  PutI64(&p, msg.timeout_ns);
  PutI64(&p, msg.free_target);
  PutI64(&p, msg.inactive_target);
  PutI64(&p, msg.reserved_target);
  PutI64(&p, msg.request_size);
  PutU32(&p, msg.user_queue_count);
  PutProgram(msg.program, &p);
  Frame(MsgType::kInstall, p, out);
}

void EncodeInstallAck(const InstallAckMsg& msg, std::string* out) {
  std::string p;
  PutU8(&p, msg.ok);
  PutStr(&p, msg.error);
  PutU64(&p, msg.container_id);
  PutU64(&p, msg.region_addr);
  PutU32(&p, msg.ring_slots);
  Frame(MsgType::kInstallAck, p, out);
}

void EncodeTeardown(const TeardownMsg& msg, std::string* out) {
  std::string p;
  PutU64(&p, msg.container_id);
  Frame(MsgType::kTeardown, p, out);
}

void EncodeTeardownAck(const TeardownAckMsg& msg, std::string* out) {
  std::string p;
  PutU8(&p, msg.ok);
  PutStr(&p, msg.error);
  Frame(MsgType::kTeardownAck, p, out);
}

void EncodePing(const PingMsg& msg, std::string* out) {
  std::string p;
  PutU64(&p, msg.seq);
  Frame(MsgType::kPing, p, out);
}

void EncodePong(const PongMsg& msg, std::string* out) {
  std::string p;
  PutU64(&p, msg.seq);
  Frame(MsgType::kPong, p, out);
}

void EncodeGoodbye(const GoodbyeMsg&, std::string* out) { Frame(MsgType::kGoodbye, "", out); }

void EncodeError(const ErrorMsg& msg, std::string* out) {
  std::string p;
  PutU32(&p, msg.code);
  PutStr(&p, msg.message);
  Frame(MsgType::kError, p, out);
}

DecodeStatus DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out) {
  if (len < kFrameHeaderBytes) {
    return DecodeStatus::kTruncated;
  }
  Reader r(data, kFrameHeaderBytes);
  bool ok = r.U32(&out->magic) && r.U32(&out->length) && r.U16(&out->type) &&
            r.U16(&out->reserved);
  if (!ok) {
    return DecodeStatus::kTruncated;
  }
  if (out->magic != kWireMagic) {
    return DecodeStatus::kBadMagic;
  }
  if (out->length > kMaxFramePayload) {
    return DecodeStatus::kBadLength;
  }
  if (out->type < static_cast<uint16_t>(MsgType::kHello) ||
      out->type > static_cast<uint16_t>(MsgType::kError)) {
    return DecodeStatus::kBadType;
  }
  return DecodeStatus::kOk;
}

DecodeStatus DecodePayload(const FrameHeader& header, const uint8_t* data, size_t len,
                           DecodedFrame* out) {
  if (len != header.length) {
    return DecodeStatus::kBadLength;
  }
  Reader r(data, len);
  bool malformed = false;
  out->type = static_cast<MsgType>(header.type);
  switch (out->type) {
    case MsgType::kHello: {
      HelloMsg& m = out->hello;
      bool ok = r.U32(&m.version) && r.U64(&m.client_pid) && r.U32(&m.qos_weight) &&
                r.Str(&m.client_name, &malformed);
      return Finish(r, ok, malformed);
    }
    case MsgType::kHelloAck: {
      HelloAckMsg& m = out->hello_ack;
      bool ok = r.U32(&m.version) && r.U64(&m.server_pid) && r.U32(&m.max_clients);
      return Finish(r, ok, malformed);
    }
    case MsgType::kInstall: {
      InstallMsg& m = out->install;
      bool ok = r.U64(&m.region_pages) && r.U32(&m.min_frames) && r.U32(&m.qos_weight) &&
                r.I64(&m.timeout_ns) && r.I64(&m.free_target) && r.I64(&m.inactive_target) &&
                r.I64(&m.reserved_target) && r.I64(&m.request_size) &&
                r.U32(&m.user_queue_count) && ReadProgram(&r, &m.program, &malformed);
      return Finish(r, ok, malformed);
    }
    case MsgType::kInstallAck: {
      InstallAckMsg& m = out->install_ack;
      bool ok = r.U8(&m.ok) && r.Str(&m.error, &malformed) && r.U64(&m.container_id) &&
                r.U64(&m.region_addr) && r.U32(&m.ring_slots);
      return Finish(r, ok, malformed);
    }
    case MsgType::kTeardown: {
      bool ok = r.U64(&out->teardown.container_id);
      return Finish(r, ok, malformed);
    }
    case MsgType::kTeardownAck: {
      TeardownAckMsg& m = out->teardown_ack;
      bool ok = r.U8(&m.ok) && r.Str(&m.error, &malformed);
      return Finish(r, ok, malformed);
    }
    case MsgType::kPing: {
      bool ok = r.U64(&out->ping.seq);
      return Finish(r, ok, malformed);
    }
    case MsgType::kPong: {
      bool ok = r.U64(&out->pong.seq);
      return Finish(r, ok, malformed);
    }
    case MsgType::kGoodbye:
      return Finish(r, true, malformed);
    case MsgType::kError: {
      ErrorMsg& m = out->error;
      bool ok = r.U32(&m.code) && r.Str(&m.message, &malformed);
      return Finish(r, ok, malformed);
    }
  }
  return DecodeStatus::kBadType;
}

}  // namespace hipec::server
