// Blocking Unix-domain socket I/O shared by the daemon and the client library: full-length
// reads/writes (EINTR-restarted) and SCM_RIGHTS file-descriptor passing for the ring fd
// that rides the install ack.
#ifndef HIPEC_SERVER_SOCKIO_H_
#define HIPEC_SERVER_SOCKIO_H_

#include <cstddef>
#include <string>

namespace hipec::server {

// Binds and listens on a fresh socket at `path` (any stale file is unlinked first).
// Returns the listening fd, or -1 with `error` set.
int ListenUnix(const std::string& path, std::string* error);

// Connects to the daemon at `path`. Returns the connected fd, or -1 with `error` set.
int ConnectUnix(const std::string& path, std::string* error);

// Reads exactly `len` bytes. False on EOF or error (a short read never escapes).
bool ReadFull(int fd, void* buf, size_t len);

// ReadFull that also captures one SCM_RIGHTS descriptor if the peer attached one to any of
// the received segments. `*captured_fd` is -1 when no descriptor arrived; the caller owns
// a captured descriptor either way.
bool ReadFullCaptureFd(int fd, void* buf, size_t len, int* captured_fd);

// Writes exactly `len` bytes (SIGPIPE suppressed via MSG_NOSIGNAL). False on error.
bool WriteAll(int fd, const void* buf, size_t len);

// WriteAll that attaches `pass_fd` as an SCM_RIGHTS control message to the first segment.
// `pass_fd < 0` degrades to a plain WriteAll.
bool WriteAllWithFd(int fd, const void* buf, size_t len, int pass_fd);

}  // namespace hipec::server

#endif  // HIPEC_SERVER_SOCKIO_H_
