// The per-client data plane: one shared-memory segment holding a pair of lock-free SPSC
// rings (docs/SERVER.md).
//
//   * submission ring  — client produces wire::Request records, the daemon's drain loop
//     consumes them in batches;
//   * completion ring  — the daemon produces wire::Completion records, the client consumes.
//
// Each ring has exactly one producer and one consumer process, so two monotonically
// increasing position counters per ring (acquire/release atomics) are the whole protocol —
// no CAS, no locks, no syscalls on the fast path. Positions are free-running uint32s;
// `pos & (slots - 1)` indexes the slot array (slots is a power of two).
//
// The segment is created by the daemon with memfd_create, sized, sealed against resizing
// (F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_SEAL — the fd goes to an untrusted process, and an
// unsealed segment could be ftruncated out from under the daemon's mapping), mapped on both
// sides, and passed to the client as a file descriptor riding an SCM_RIGHTS control message
// on the install ack — no global name, no cleanup problem: the segment dies with its last
// mapping, even if the client is SIGKILLed mid-burst.
//
// Attachment is defensive: the daemon wrote the header, but a client maps bytes it must not
// trust blindly either (version skew), so Attach() validates magic, version, slot counts and
// segment size before touching a ring.
#ifndef HIPEC_SERVER_RING_H_
#define HIPEC_SERVER_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "server/wire.h"

namespace hipec::server {

inline constexpr uint32_t kRingMagic = 0x48525131;  // "HRQ1"
inline constexpr uint32_t kRingVersion = 1;
inline constexpr uint32_t kDefaultRingSlots = 1024;

// The shared segment's header page. All cross-process state lives here; the Request and
// Completion slot arrays follow at the offsets RingLayout computes.
struct RingHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t slots = 0;  // per-direction slot count, power of two
  uint32_t reserved = 0;

  // Submission ring positions (client produces, daemon consumes).
  alignas(64) std::atomic<uint32_t> sub_tail{0};  // next slot the producer will fill
  alignas(64) std::atomic<uint32_t> sub_head{0};  // next slot the consumer will read
  // Completion ring positions (daemon produces, client consumes).
  alignas(64) std::atomic<uint32_t> comp_tail{0};
  alignas(64) std::atomic<uint32_t> comp_head{0};

  // Producer-side bounded-backoff stalls, published where the other side can read them:
  // the client bumps sub_stalls when the submission ring stays full through its backoff
  // window; the daemon bumps comp_stalls for the completion ring. The daemon aggregates
  // both into its server.backpressure_stalls counter.
  alignas(64) std::atomic<uint64_t> sub_stalls{0};
  std::atomic<uint64_t> comp_stalls{0};

  // Heartbeat: CLOCK_MONOTONIC nanoseconds of the client's last sign of life (submission,
  // ping, or explicit beat). The daemon's reaper compares it against the heartbeat timeout.
  std::atomic<uint64_t> client_beat_ns{0};
};

static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "ring positions must be lock-free across processes");
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "ring counters must be lock-free across processes");

// Byte layout of a segment with `slots` slots per direction.
struct RingLayout {
  size_t header_bytes = 0;
  size_t sub_offset = 0;
  size_t comp_offset = 0;
  size_t total_bytes = 0;

  static RingLayout For(uint32_t slots);
};

// A mapped ring pair. The same class serves both sides; which ring a side produces into is
// fixed by the calling code (client: PushRequest/PopCompletion; daemon: PopRequests/
// PushCompletion). Not thread-safe per side: one producer thread, one consumer thread.
class RingPair {
 public:
  RingPair() = default;
  ~RingPair();
  RingPair(const RingPair&) = delete;
  RingPair& operator=(const RingPair&) = delete;
  RingPair(RingPair&& other) noexcept;
  RingPair& operator=(RingPair&& other) noexcept;

  // Daemon side: creates an anonymous memfd segment, maps it, and formats the header.
  // On success owns both the mapping and the fd (DetachFd hands the fd to the install ack).
  bool Create(uint32_t slots, std::string* error);

  // Either side: maps an existing segment from `fd` and validates the header. Takes
  // ownership of `fd` on success and failure alike.
  bool Attach(int fd, std::string* error);

  void Close();

  bool valid() const { return header_ != nullptr; }
  uint32_t slots() const { return header_ == nullptr ? 0 : header_->slots; }
  RingHeader* header() { return header_; }
  // The segment fd, or -1. Still owned by the RingPair.
  int fd() const { return fd_; }

  // --- submission ring (Request records) -----------------------------------------------------

  // Producer: false when the ring is full (caller decides how to back off).
  bool TryPushRequest(const Request& request);
  // Consumer: pops up to `max` records; returns how many were read.
  size_t PopRequests(Request* out, size_t max);
  // Records currently queued (racy snapshot; exact for the side that owns an end).
  uint32_t PendingRequests() const;

  // --- completion ring (Completion records) --------------------------------------------------

  bool TryPushCompletion(const Completion& completion);
  size_t PopCompletions(Completion* out, size_t max);
  uint32_t PendingCompletions() const;

 private:
  RingHeader* header_ = nullptr;
  Request* sub_ = nullptr;
  Completion* comp_ = nullptr;
  size_t mapped_bytes_ = 0;
  int fd_ = -1;
};

// Current CLOCK_MONOTONIC in nanoseconds — the heartbeat and latency timebase shared by the
// client library and the daemon's drain loop.
uint64_t MonotonicNowNs();

}  // namespace hipec::server

#endif  // HIPEC_SERVER_RING_H_
