// hipecd's core: one kernel + HiPEC engine serving many client processes (docs/SERVER.md).
//
// Control plane: a Unix-domain stream socket. Each accepted connection gets a control
// thread that speaks the framed protocol in wire.h — hello/version handshake, policy
// install (through the engine's existing validate + JIT + admission path), container
// teardown, heartbeat pings. The daemon's contract with untrusted clients is
// reject-and-reply: malformed frames bump counters and produce kError replies (or a
// disconnect when the stream cannot be re-synced), never an assert or a crash.
//
// Data plane: a per-client shared-memory ring pair (ring.h). A pool of drain threads scans
// installed sessions, claims each with an atomic flag (preserving the ring's single-consumer
// contract with more than one drain thread), and executes up to
// `drain_batch * qos_weight` requests per claim — the per-client QoS weight is exactly a
// drain-budget multiplier, so a weight-4 client gets 4x the service of a weight-1 client
// under contention and no more than it can submit otherwise. Requests map to the same
// kernel entry points an in-process application would use (`Kernel::Touch`,
// `Kernel::FlushAddress`), so admission, burst-watermark rejection, FAFR reclamation and
// the Flush reserve all apply unchanged.
//
// Client death: socket EOF, a failed write, or a heartbeat timeout all funnel into the same
// teardown — `Kernel::TerminateTask` under a shared world guard, the identical path a
// security-checker kill takes — so every private frame is reclaimed and the invariant
// auditor stays green no matter how a client leaves.
#ifndef HIPEC_SERVER_SERVER_H_
#define HIPEC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "obs/histogram.h"
#include "obs/probe.h"
#include "server/ring.h"
#include "server/wire.h"

namespace hipec::server {

struct ServerConfig {
  // Filesystem path of the listening socket (sockaddr_un, so keep it short).
  std::string socket_path;
  // Kernel shape (same knobs as mach::KernelParams).
  uint64_t total_frames = 16384;
  uint64_t kernel_reserved_frames = 2048;
  core::FrameManagerConfig manager;
  bool jit_mode = mach::DefaultJitMode();
  // Data-plane shape.
  size_t drain_threads = 2;
  uint32_t ring_slots = kDefaultRingSlots;
  // Requests executed per QoS-weight unit each time a drain thread claims a session.
  size_t drain_batch = 64;
  // A client whose last heartbeat (submission, ping, or explicit beat) is older than this is
  // treated as dead. 0 disables the reaper.
  uint64_t heartbeat_timeout_ns = 0;
  uint32_t max_clients = 64;
};

// Per-client counters + latency distribution, snapshotted for reports and tests.
struct ClientStats {
  uint64_t id = 0;
  std::string name;
  uint32_t qos_weight = 1;
  uint64_t requests = 0;
  uint64_t completions = 0;
  uint64_t malformed = 0;
  uint64_t backpressure_stalls = 0;  // both sides' producer stalls, from the shared header
  bool installed = false;
  bool dead = false;
  obs::Histogram latency;  // per-request service time; populated only while probes are on
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and spawns the accept, drain, and reaper threads.
  bool Start(std::string* error);
  // Tears every session down (not counted as client deaths) and joins all threads.
  // Idempotent; the destructor calls it.
  void Stop();

  mach::Kernel& kernel() { return *kernel_; }
  core::HipecEngine& engine() { return *engine_; }
  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }
  const ServerConfig& config() const { return config_; }

  std::vector<ClientStats> ClientStatsSnapshot();
  // Sessions currently installed and not dead.
  size_t LiveSessionCount();

  // --- test hooks ----------------------------------------------------------------------------
  // Parks the drain threads so a test can step the data plane deterministically.
  void SetDrainPausedForTest(bool paused) {
    drain_paused_.store(paused, std::memory_order_release);
  }
  // Claims session `session_id` and runs one weighted drain pass (exactly what a drain
  // thread would do). Returns requests executed, or 0 if the session is unknown/idle.
  size_t DrainSessionOnceForTest(uint64_t session_id);

 private:
  struct Session {
    uint64_t id = 0;
    int sock = -1;
    // Serializes the control thread's close() against shutdown() from the reaper/Stop.
    // Only the control thread closes; everyone else takes the lock, checks sock >= 0, and
    // calls shutdown — so a wakeup can never land on a recycled descriptor.
    std::mutex sock_mu;
    std::string name;
    std::thread control_thread;

    // Handshake / lifecycle state, owned by the control thread.
    bool hello_done = false;
    bool torn_down = false;

    // Data-plane state. Fields below are written by the control thread before the
    // `installed` release-store and read by drain threads after an acquire-load.
    uint32_t qos_weight = 1;
    RingPair ring;
    mach::Task* task = nullptr;
    uint64_t container_id = 0;
    uint64_t region_addr = 0;
    uint64_t region_pages = 0;
    std::atomic<bool> installed{false};
    // True once `ring` is created and mapped; never reset (the mapping lives until the
    // Session is destroyed), so stats readers can safely touch the header after teardown.
    std::atomic<bool> ring_ready{false};
    std::atomic<bool> dead{false};
    // Drain-claim flag: whichever thread flips false->true owns both rings' daemon ends
    // (and `overflow`/`requests_done`) until it stores false.
    std::atomic<bool> draining{false};
    // Completions that outlasted the bounded push backoff; delivered before new requests
    // are popped, so completion-ring pressure propagates back to the submission ring.
    std::deque<Completion> overflow;
    uint64_t requests_done = 0;
    std::atomic<uint64_t> completions_done{0};
    std::atomic<uint64_t> malformed{0};
    // Control-plane heartbeat (pings); the ring header carries the data-plane one.
    std::atomic<uint64_t> last_beat_ns{0};
    std::atomic<bool> reaped{false};

    // Latency histogram; leaf mutex because the report reads while a drain thread writes.
    std::mutex lat_mu;
    obs::Histogram latency;
  };

  void AcceptLoop();
  void ControlLoop(std::shared_ptr<Session> session);
  void DrainLoop();
  void ReaperLoop();

  // One frame dispatched; false ends the connection (protocol desync or goodbye).
  bool HandleFrame(Session& session, const FrameHeader& header,
                   const std::vector<uint8_t>& payload, bool* orderly);
  void HandleInstall(Session& session, const InstallMsg& msg);
  void HandleTeardown(Session& session, const TeardownMsg& msg);

  // Runs one weighted drain pass against a claimed session. Returns requests executed.
  size_t DrainSession(Session& session);
  Completion ExecuteRequest(Session& session, const Request& request);
  // Bounded-backoff completion delivery; spills to `session.overflow` when the ring stays
  // full. Returns false only when the session died mid-push.
  bool DeliverCompletion(Session& session, const Completion& completion);

  // Terminates the session's task (frame reclamation == checker-kill path) after waiting
  // out any in-flight drain claim. Safe to call repeatedly.
  void TeardownSession(Session& session, const std::string& reason);

  // Joins the control threads of sessions that retired themselves (a thread cannot join
  // itself, so ControlLoop parks the session on zombies_ for the accept loop or Stop).
  void ReapZombieSessions();

  void SendError(Session& session, uint32_t code, const std::string& message);

  ServerConfig config_;
  std::unique_ptr<mach::Kernel> kernel_;
  std::unique_ptr<core::HipecEngine> engine_;
  sim::CounterSet counters_;
  obs::ProbeSet probes_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_paused_{false};
  std::thread accept_thread_;
  std::vector<std::thread> drain_threads_;
  std::thread reaper_thread_;

  std::mutex sessions_mu_;
  // Live connections only: a departing control thread erases its session here (freeing its
  // max_clients slot) and moves it to zombies_, which just awaits a thread join.
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> zombies_;
  uint64_t next_session_id_ = 1;
};

}  // namespace hipec::server

#endif  // HIPEC_SERVER_SERVER_H_
