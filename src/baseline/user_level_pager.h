// Baseline application-controlled paging mechanisms the paper compares against (§2, §5.1):
//
//   * kUpcall — the kernel upcalls into the application for every replacement decision
//     (Krueger-style). Cost per decision: two kernel/user crossings plus user-stack setup.
//   * kIpc    — a Mach external pager making the decision via message passing (PREMO/V++
//     style): one null-IPC round trip per decision.
//   * kPremoSyscall — PREMO's actual structure: pages live in the *shared* global pool (no
//     private frame list, so other applications' paging interferes), and the user-level
//     policy queries reference/modify bits through PREMO-created system calls.
//
// All mechanisms execute the *same* replacement logic (a C++ "user-level" policy), so
// experiments isolate the crossing/pooling cost — exactly the comparison of Table 4 and the
// crossing-mechanism ablation.
#ifndef HIPEC_BASELINE_USER_LEVEL_PAGER_H_
#define HIPEC_BASELINE_USER_LEVEL_PAGER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mach/kernel.h"
#include "policies/oracle.h"
#include "sim/stats.h"

namespace hipec::baseline {

enum class Mechanism {
  kUpcall,
  kIpc,
  kPremoSyscall,
};

struct PagerConfig {
  Mechanism mechanism = Mechanism::kUpcall;
  policies::OraclePolicy policy = policies::OraclePolicy::kFifo;
  // User-level computation per replacement decision (list walking in the application).
  sim::Nanos user_compute_ns = 2 * sim::kMicrosecond;
  // PREMO: system calls issued per decision to fetch reference/modify information.
  int premo_info_syscalls = 2;
};

// A user-level external memory manager. Registers as the kernel's fault interceptor; regions
// it creates are marked via the VM object's opaque container pointer.
class UserLevelPager final : public mach::FaultInterceptor {
 public:
  UserLevelPager(mach::Kernel* kernel, PagerConfig config);
  ~UserLevelPager() override;
  UserLevelPager(const UserLevelPager&) = delete;
  UserLevelPager& operator=(const UserLevelPager&) = delete;

  // Creates an application-controlled anonymous region. For upcall/IPC mechanisms
  // `pool_frames` private frames are reserved up front; PREMO ignores it (shared pool).
  uint64_t CreateRegion(mach::Task* task, uint64_t size_bytes, size_t pool_frames);

  // mach::FaultInterceptor:
  bool HandleFault(const mach::FaultContext& ctx) override;
  void OnRegionTeardown(mach::Task* task, mach::VmMapEntry* entry) override;

  int64_t decisions() const { return counters_.Get("pager.decisions"); }
  sim::CounterSet& counters() { return counters_; }

 private:
  struct Region {
    mach::Task* task = nullptr;
    mach::VmObject* object = nullptr;
    // Private pool (upcall/IPC): free frames plus resident frames in arrival order.
    std::deque<mach::VmPage*> free_frames;
    std::vector<mach::VmPage*> resident;  // arrival order
  };

  void ChargeCrossing();
  mach::VmPage* ChooseVictim(std::vector<mach::VmPage*>& resident);

  mach::Kernel* kernel_;
  PagerConfig config_;
  std::vector<std::unique_ptr<Region>> regions_;
  sim::CounterSet counters_;
};

}  // namespace hipec::baseline

#endif  // HIPEC_BASELINE_USER_LEVEL_PAGER_H_
