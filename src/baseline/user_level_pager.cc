#include "baseline/user_level_pager.h"

#include <algorithm>

#include "sim/check.h"

namespace hipec::baseline {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrUpcalls = sim::InternCounter("pager.upcalls");
const sim::CounterId kCtrIpcs = sim::InternCounter("pager.ipcs");
const sim::CounterId kCtrPremoDecisions = sim::InternCounter("pager.premo_decisions");
const sim::CounterId kCtrDecisions = sim::InternCounter("pager.decisions");
const sim::CounterId kCtrFaults = sim::InternCounter("pager.faults");

}  // namespace

UserLevelPager::UserLevelPager(mach::Kernel* kernel, PagerConfig config)
    : kernel_(kernel), config_(config) {
  kernel_->SetFaultInterceptor(this);
}

UserLevelPager::~UserLevelPager() { kernel_->SetFaultInterceptor(nullptr); }

uint64_t UserLevelPager::CreateRegion(mach::Task* task, uint64_t size_bytes,
                                      size_t pool_frames) {
  kernel_->clock().Advance(kernel_->costs().null_syscall_ns);
  auto region = std::make_unique<Region>();
  region->task = task;
  region->object = kernel_->CreateAnonObject(size_bytes);
  region->object->container = region.get();

  if (config_.mechanism != Mechanism::kPremoSyscall) {
    // Private pool: reserve the frames now, like a segment manager acquiring its cache.
    mach::PageQueue staging("baseline_staging");
    bool ok = kernel_->daemon().AllocFramesForManager(pool_frames, &staging, region.get());
    HIPEC_CHECK_MSG(ok, "baseline pager could not reserve its frame pool");
    while (mach::VmPage* page = staging.DequeueHead()) {
      region->free_frames.push_back(page);
    }
  }

  uint64_t addr = task->map().Insert(region->object, 0, size_bytes);
  regions_.push_back(std::move(region));
  return addr;
}

void UserLevelPager::ChargeCrossing() {
  const sim::CostModel& costs = kernel_->costs();
  switch (config_.mechanism) {
    case Mechanism::kUpcall:
      // Kernel -> user upcall and the return trap, plus user stack setup.
      kernel_->clock().Advance(costs.UpcallDecisionNs());
      counters_.Add(kCtrUpcalls);
      break;
    case Mechanism::kIpc:
      // One null-IPC round trip to the external pager.
      kernel_->clock().Advance(costs.IpcDecisionNs());
      counters_.Add(kCtrIpcs);
      break;
    case Mechanism::kPremoSyscall:
      // The decision itself runs at user level after an upcall-equivalent notification; the
      // policy then queries page information through PREMO system calls.
      kernel_->clock().Advance(costs.UpcallDecisionNs());
      kernel_->clock().Advance(static_cast<sim::Nanos>(config_.premo_info_syscalls) *
                               costs.null_syscall_ns);
      counters_.Add(kCtrPremoDecisions);
      break;
  }
  kernel_->clock().Advance(config_.user_compute_ns);
  counters_.Add(kCtrDecisions);
}

mach::VmPage* UserLevelPager::ChooseVictim(std::vector<mach::VmPage*>& resident) {
  HIPEC_CHECK(!resident.empty());
  size_t pick = 0;
  switch (config_.policy) {
    case policies::OraclePolicy::kFifo:
      pick = 0;
      break;
    case policies::OraclePolicy::kLru: {
      for (size_t i = 1; i < resident.size(); ++i) {
        if (resident[i]->last_reference_ns < resident[pick]->last_reference_ns) {
          pick = i;
        }
      }
      break;
    }
    case policies::OraclePolicy::kMru: {
      for (size_t i = 1; i < resident.size(); ++i) {
        if (resident[i]->last_reference_ns >= resident[pick]->last_reference_ns) {
          pick = i;
        }
      }
      break;
    }
  }
  mach::VmPage* victim = resident[pick];
  resident.erase(resident.begin() + static_cast<ptrdiff_t>(pick));
  return victim;
}

bool UserLevelPager::HandleFault(const mach::FaultContext& ctx) {
  auto* region = static_cast<Region*>(ctx.entry->object->container);
  HIPEC_CHECK(region != nullptr);
  counters_.Add(kCtrFaults);

  mach::VmPage* frame = nullptr;
  if (config_.mechanism == Mechanism::kPremoSyscall) {
    // Shared pool: frames come from (and are reclaimed by) the global pageout daemon, so
    // other applications interfere. The user-level policy only picks which of *its own*
    // resident pages to give back when the system is under pressure.
    if (kernel_->daemon().free_count() > kernel_->daemon().targets().free_min) {
      frame = kernel_->daemon().AllocForFault();
    } else {
      ChargeCrossing();
      // Rebuild the resident list: the daemon may have stolen pages behind our back.
      std::erase_if(region->resident,
                    [&](mach::VmPage* p) { return p->object != region->object; });
      if (!region->resident.empty()) {
        frame = ChooseVictim(region->resident);
        if (frame->queue != nullptr) {
          frame->queue.load()->Remove(frame);
        }
        kernel_->EvictPage(frame, /*flush_if_dirty=*/true);
      } else {
        frame = kernel_->daemon().AllocForFault();
      }
    }
    if (frame == nullptr) {
      return false;
    }
    kernel_->InstallPage(ctx.task, ctx.entry, ctx.vaddr, frame, ctx.is_write);
    kernel_->daemon().Activate(frame);  // shared pool: global queues manage it
    region->resident.push_back(frame);
    return true;
  }

  // Private pool (upcall / IPC).
  if (!region->free_frames.empty()) {
    frame = region->free_frames.front();
    region->free_frames.pop_front();
  } else {
    ChargeCrossing();  // the replacement decision crosses to user level
    frame = ChooseVictim(region->resident);
    kernel_->EvictPage(frame, /*flush_if_dirty=*/true);
  }
  kernel_->InstallPage(ctx.task, ctx.entry, ctx.vaddr, frame, ctx.is_write);
  region->resident.push_back(frame);
  return true;
}

void UserLevelPager::OnRegionTeardown(mach::Task* task, mach::VmMapEntry* entry) {
  (void)task;
  auto* region = static_cast<Region*>(entry->object->container);
  HIPEC_CHECK(region != nullptr);
  auto give_back = [&](mach::VmPage* page) {
    if (page->queue != nullptr) {
      page->queue.load()->Remove(page);
    }
    if (page->object != nullptr) {
      kernel_->EvictPage(page, /*flush_if_dirty=*/false);
    }
    kernel_->daemon().ReturnFrame(page);
  };
  for (mach::VmPage* page : region->free_frames) {
    give_back(page);
  }
  for (mach::VmPage* page : region->resident) {
    if (config_.mechanism == Mechanism::kPremoSyscall && page->object != region->object) {
      continue;  // already stolen by the daemon
    }
    give_back(page);
  }
  entry->object->container = nullptr;
  std::erase_if(regions_, [&](const auto& r) { return r.get() == region; });
}

}  // namespace hipec::baseline
