// Internals shared between the JIT driver (jit.cc) and the per-arch emitters
// (jit_x86_64.cc). Nothing here is part of the public surface in jit.h.
#ifndef HIPEC_HIPEC_JIT_INTERNAL_H_
#define HIPEC_HIPEC_JIT_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "hipec/jit.h"
#include "hipec/operand.h"

namespace hipec::core::jit::internal {

// Displacements the emitter bakes into memory operands. Probed at run time from live
// objects (not offsetof) so no layout assumption beyond "member addresses are stable" is
// made — JitFrame holds an exception_ptr and VmPage holds atomics, neither of which needs
// to be standard layout for this to work.
struct HostOffsets {
  // JitFrame
  uint32_t f_slots, f_budget, f_condition, f_kill, f_now, f_horizon, f_trace;
  uint32_t f_container;
  uint32_t f_return_operand, f_error_msg, f_error_operand, f_trap_index;
  // OperandEntry
  uint32_t op_size, op_int, op_page, op_queue;
  // mach::PageQueue / mach::VmPage
  uint32_t q_count, q_head, q_tail;
  uint32_t pg_queue, pg_reference, pg_modified;
  uint32_t pg_q_prev, pg_q_next, pg_owner, pg_enqueue_ns;
  uint32_t pg_user_word;
};
const HostOffsets& Offsets();

// True when SetUnsupportedKindForTesting masked this kind out.
bool KindMasked(DispatchKind kind);

// ---- bridges ------------------------------------------------------------------------------
// The only way generated code calls back into C++. ABI: SysV, (JitFrame*, a, b, c) ->
// uint64_t. Return 0 = ok / condition false, 1 = ok / condition true; anything else is a
// JitStatus the generated code must return immediately (today only kException — every C++
// failure, PolicyError and TimeoutSignal included, is captured into JitFrame::pending so it
// never unwinds through the JIT frame). Each bridge refreshes JitFrame::horizon before
// returning, since any of them may advance the clock or schedule events.
extern "C" {
uint64_t HipecJitBridgeCharge(JitFrame* f, uint64_t delta_ns, uint64_t, uint64_t);
uint64_t HipecJitBridgeTrace(JitFrame* f, uint64_t cc, uint64_t op, uint64_t cond);
uint64_t HipecJitBridgeActivate(JitFrame* f, uint64_t event, uint64_t, uint64_t);
// DeQueue head/tail of queue slot b into page slot a (tail != 0 selects DequeueTail).
uint64_t HipecJitBridgeDeq(JitFrame* f, uint64_t a, uint64_t b, uint64_t tail);
// EnQueue page slot a onto queue slot b (also the second half of the fused Deq;Enq pair,
// which passes the fused record's target queue as b).
uint64_t HipecJitBridgeEnq(JitFrame* f, uint64_t a, uint64_t b, uint64_t tail);
uint64_t HipecJitBridgeRequest(JitFrame* f, uint64_t a, uint64_t b, uint64_t);
uint64_t HipecJitBridgeReleaseQueue(JitFrame* f, uint64_t a, uint64_t, uint64_t);
uint64_t HipecJitBridgeReleasePage(JitFrame* f, uint64_t a, uint64_t, uint64_t);
uint64_t HipecJitBridgeFlush(JitFrame* f, uint64_t a, uint64_t, uint64_t);
uint64_t HipecJitBridgeFind(JitFrame* f, uint64_t a, uint64_t b, uint64_t);
// kFifo/kLru/kMru — `kind` is the DispatchKind; charges the complex-command surcharge.
uint64_t HipecJitBridgeReplacement(JitFrame* f, uint64_t a, uint64_t b, uint64_t kind);
uint64_t HipecJitBridgeMigrate(JitFrame* f, uint64_t a, uint64_t b, uint64_t);
uint64_t HipecJitBridgeUnlink(JitFrame* f, uint64_t a, uint64_t, uint64_t);
// kWeightedSelectMin/Max — queue slot a, destination page slot b, is_max selects the
// direction; charges the complex-command surcharge like the other replacement commands.
uint64_t HipecJitBridgeWeightedSelect(JitFrame* f, uint64_t a, uint64_t b, uint64_t is_max);
// kSatDotProduct — destination int slot a, vector base slot b, width n (from the decoded
// record's target field).
uint64_t HipecJitBridgeSatDot(JitFrame* f, uint64_t a, uint64_t b, uint64_t n);
}

// ---- per-arch emitters --------------------------------------------------------------------

// One compiled event, before placement: `code` is position-independent (all internal jumps
// rel32 within the blob, all external calls absolute imm64), fragment offsets are relative
// to the blob start.
struct EventArtifact {
  std::vector<uint8_t> code;
  std::vector<JitFragment> fragments;
};

#if defined(__x86_64__)
// Emits one event's native code. Returns false (leaving `out` untouched) when a kind in the
// stream is masked out for testing, which makes the whole event fall back to the
// interpreter.
bool EmitEventX86(const DecodedEvent& stream, const OperandArray& operands,
                  const CompileOptions& options, int event, EventArtifact* out);
#endif

}  // namespace hipec::core::jit::internal

#endif  // HIPEC_HIPEC_JIT_INTERNAL_H_
