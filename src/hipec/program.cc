#include "hipec/program.h"

#include "hipec/decoded.h"
#include "sim/check.h"

namespace hipec::core {

void PolicyProgram::SetEvent(int event, const std::vector<Instruction>& commands) {
  std::vector<uint32_t> words;
  words.reserve(commands.size() + 1);
  words.push_back(kHipecMagic);
  for (const Instruction& inst : commands) {
    words.push_back(inst.Encode());
  }
  SetEventRaw(event, std::move(words));
}

void PolicyProgram::SetEventRaw(int event, std::vector<uint32_t> words) {
  HIPEC_CHECK_MSG(event >= 0 && event < 256, "event number out of range");
  if (event >= static_cast<int>(events_.size())) {
    events_.resize(static_cast<size_t>(event) + 1);
  }
  events_[static_cast<size_t>(event)].words = std::move(words);
}

size_t PolicyProgram::TotalWords() const {
  size_t n = 0;
  for (const EventProgram& e : events_) {
    n += e.words.size();
  }
  return n;
}

std::string PolicyProgram::ToString() const { return Disassemble(*this); }

}  // namespace hipec::core
