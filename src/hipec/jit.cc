#include "hipec/jit.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define HIPEC_JIT_HAVE_MMAP 1
#else
#define HIPEC_JIT_HAVE_MMAP 0
#endif

#include "hipec/container.h"
#include "hipec/executor.h"
#include "hipec/frame_manager.h"
#include "hipec/jit_internal.h"
#include "mach/kernel.h"
#include "mach/vm_map.h"
#include "mach/vm_object.h"
#include "sim/stats.h"

namespace hipec::core::jit {

// The emitter has a template per DispatchKind; this fires when someone grows the IR without
// teaching the JIT the new kind (add a case to jit_x86_64.cc or mark it unsupported in
// KindSupported so affected events fall back to the interpreter).
static_assert(kDispatchKindCount == 56,
              "new DispatchKind: add a native template to jit_x86_64.cc (or exclude the kind "
              "in KindSupported) and update this tripwire");

// The emitted code loads these through raw pointers; the bridges and the interpreter go
// through the typed C++ accessors. The probed-offset scheme keeps layout assumptions out,
// but the *widths* are baked into the instruction templates.
static_assert(sizeof(bool) == 1, "condition/reference/modified templates store single bytes");
static_assert(sizeof(std::atomic<bool>) == 1, "the kill-flag template reads a single byte");
static_assert(sizeof(std::atomic<mach::PageQueue*>) == sizeof(void*),
              "the InQ template reads VmPage::queue as one plain pointer load");
static_assert(sizeof(size_t) == 8, "queue-count templates do 64-bit loads");
// The inlined EnQueue/DeQueue templates store VmPage::queue with a plain 64-bit mov, which
// on x86-64 is exactly the release store the C++ methods perform; the link and bookkeeping
// fields are plain 64-bit members.
static_assert(sizeof(mach::VmPage*) == 8 && sizeof(sim::Nanos) == 8 && sizeof(void*) == 8,
              "queue-splice templates do 64-bit loads and stores");

// Activate re-enters the policy through the executor's private JIT entry point, and the
// bridges reach the frame manager / kernel context through the executor instead of carrying
// them in every JitFrame; this is the one struct that needs friend access.
struct ExecutorAccess {
  static void Activate(PolicyExecutor* ex, Container* c, int event, int depth,
                       int64_t* budget) {
    ex->RunEventJit(c, event, depth, budget);
  }
  static GlobalFrameManager* Manager(PolicyExecutor* ex) { return ex->manager_; }
  static const mach::KernelContext& Kctx(PolicyExecutor* ex) { return ex->kernel_->ctx(); }
};

namespace {
// Test-only mask of "unsupported" kinds (see SetUnsupportedKindForTesting).
bool g_kind_masked[kDispatchKindCount] = {};
}  // namespace

namespace internal {

bool KindMasked(DispatchKind kind) { return g_kind_masked[static_cast<uint8_t>(kind)]; }

const HostOffsets& Offsets() {
  static const HostOffsets offsets = [] {
    auto delta = [](const void* base, const void* member) {
      return static_cast<uint32_t>(static_cast<const char*>(member) -
                                   static_cast<const char*>(base));
    };
    HostOffsets o{};
    static JitFrame f;
    o.f_slots = delta(&f, &f.slots);
    o.f_budget = delta(&f, &f.budget);
    o.f_condition = delta(&f, &f.condition);
    o.f_kill = delta(&f, &f.kill);
    o.f_now = delta(&f, &f.now_addr);
    o.f_horizon = delta(&f, &f.horizon);
    o.f_trace = delta(&f, &f.trace);
    o.f_container = delta(&f, &f.container);
    o.f_return_operand = delta(&f, &f.return_operand);
    o.f_error_msg = delta(&f, &f.error_msg);
    o.f_error_operand = delta(&f, &f.error_operand);
    o.f_trap_index = delta(&f, &f.trap_index);
    static OperandEntry ops[2];
    o.op_size = delta(&ops[0], &ops[1]);
    o.op_int = delta(&ops[0], &ops[0].int_value);
    o.op_page = delta(&ops[0], &ops[0].page);
    o.op_queue = delta(&ops[0], &ops[0].queue);
    static mach::PageQueue q("hipec_jit_offset_probe");
    o.q_count = delta(&q, q.count_addr());
    o.q_head = delta(&q, q.head_storage());
    o.q_tail = delta(&q, q.tail_storage());
    static mach::VmPage pg;
    o.pg_queue = delta(&pg, &pg.queue);
    o.pg_reference = delta(&pg, &pg.reference);
    o.pg_modified = delta(&pg, &pg.modified);
    o.pg_q_prev = delta(&pg, &pg.q_prev);
    o.pg_q_next = delta(&pg, &pg.q_next);
    o.pg_owner = delta(&pg, &pg.owner);
    o.pg_enqueue_ns = delta(&pg, &pg.enqueue_ns);
    o.pg_user_word = delta(&pg, &pg.user_word);
    return o;
  }();
  return offsets;
}

namespace {

const sim::CounterId kCtrPolicyCommands = sim::InternCounter("executor.policy_commands");

// Replicas of the interpreter's run-time helpers (executor.cc), with identical failure text.
inline int64_t LoadInt(const OperandEntry& e) {
  return e.type == OperandType::kQueueCount ? static_cast<int64_t>(e.queue->count())
                                            : e.int_value;
}

[[noreturn]] void FailOperand(uint8_t index, const char* message) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "operand 0x%x: %s", index, message);
  throw PolicyError(buf);
}

inline mach::VmPage* RequirePage(uint8_t index, const OperandEntry& e) {
  if (e.page == nullptr) [[unlikely]] {
    FailOperand(index, "page variable is empty");
  }
  return e.page;
}

// Every bridge body runs under this wrapper: no exception may unwind into the generated
// code (it has no unwind tables), so everything is captured into JitFrame::pending and
// surfaced as a status. The horizon is refreshed unconditionally — any bridge may have
// advanced the clock or scheduled events.
template <typename Fn>
uint64_t Guarded(JitFrame* f, Fn&& fn) {
  uint64_t r;
  try {
    r = fn();
  } catch (...) {
    f->pending = std::current_exception();
    r = static_cast<uint64_t>(JitStatus::kException);
  }
  f->RefreshHorizon();
  return r;
}

inline uint64_t Ok(bool cond) { return cond ? 1u : 0u; }

// Bridge-side accessors for the context the frame no longer carries.
inline const mach::KernelContext& Kctx(JitFrame* f) {
  return ExecutorAccess::Kctx(f->executor);
}
inline GlobalFrameManager* Manager(JitFrame* f) { return ExecutorAccess::Manager(f->executor); }

}  // namespace

extern "C" uint64_t HipecJitBridgeCharge(JitFrame* f, uint64_t delta_ns, uint64_t,
                                         uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    Kctx(f).Charge(static_cast<sim::Nanos>(delta_ns));
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeTrace(JitFrame* f, uint64_t cc, uint64_t op,
                                        uint64_t cond) {
  return Guarded(f, [&]() -> uint64_t {
    f->trace->push_back(ExecTrace{f->event, static_cast<uint16_t>(cc),
                                  static_cast<uint8_t>(op), cond != 0});
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeActivate(JitFrame* f, uint64_t event, uint64_t, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    ExecutorAccess::Activate(f->executor, f->container, static_cast<int>(event), f->depth + 1,
                             f->budget);
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeDeq(JitFrame* f, uint64_t a, uint64_t b, uint64_t tail) {
  return Guarded(f, [&]() -> uint64_t {
    mach::PageQueue* queue = f->slots[b].queue;
    mach::VmPage* page = tail != 0 ? queue->DequeueTail() : queue->DequeueHead();
    if (page == nullptr) {
      throw PolicyError("DeQueue from an empty queue (guard with EmptyQ or a count)");
    }
    f->slots[a].page = page;
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeEnq(JitFrame* f, uint64_t a, uint64_t b, uint64_t tail) {
  return Guarded(f, [&]() -> uint64_t {
    mach::VmPage* page = RequirePage(static_cast<uint8_t>(a), f->slots[a]);
    if (page->owner != f->container) {
      throw PolicyError("EnQueue of a frame the application does not own");
    }
    if (page->queue != nullptr) {
      throw PolicyError("EnQueue of a page that is already on a queue");
    }
    mach::PageQueue* queue = f->slots[b].queue;
    if (tail != 0) {
      queue->EnqueueTail(page, Kctx(f).now());
    } else {
      queue->EnqueueHead(page, Kctx(f).now());
    }
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeRequest(JitFrame* f, uint64_t a, uint64_t b, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    int64_t n = LoadInt(f->slots[a]);
    if (n < 0) {
      throw PolicyError("Request: negative size");
    }
    return Ok(Manager(f)->RequestFrames(f->container, static_cast<size_t>(n),
                                        f->slots[b].queue));
  });
}

extern "C" uint64_t HipecJitBridgeReleaseQueue(JitFrame* f, uint64_t a, uint64_t, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    mach::VmPage* page = f->slots[a].queue->DequeueHead();
    if (page == nullptr) {
      return 0;
    }
    Manager(f)->ReleaseFrame(f->container, page);
    return 1;
  });
}

extern "C" uint64_t HipecJitBridgeReleasePage(JitFrame* f, uint64_t a, uint64_t, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    OperandEntry& A = f->slots[a];
    mach::VmPage* page = A.page;
    if (page == nullptr) {
      return 0;  // condition stays false, no error — matches kReleasePage
    }
    if (page->owner != f->container) {
      throw PolicyError("Release of a frame the application does not own");
    }
    if (page->queue != nullptr) {
      throw PolicyError("Release of a page still on a queue (DeQueue it first)");
    }
    Manager(f)->ReleaseFrame(f->container, page);
    A.page = nullptr;
    return 1;
  });
}

extern "C" uint64_t HipecJitBridgeFlush(JitFrame* f, uint64_t a, uint64_t, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    OperandEntry& A = f->slots[a];
    mach::VmPage* page = RequirePage(static_cast<uint8_t>(a), A);
    if (page->owner != f->container) {
      throw PolicyError("Flush of a frame the application does not own");
    }
    if (page->queue != nullptr) {
      throw PolicyError("Flush of a page still on a queue (DeQueue it first)");
    }
    A.page = Manager(f)->FlushExchange(f->container, page);
    return 1;
  });
}

extern "C" uint64_t HipecJitBridgeFind(JitFrame* f, uint64_t a, uint64_t b, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    Container* c = f->container;
    auto vaddr = static_cast<uint64_t>(LoadInt(f->slots[b]));
    mach::VmMapEntry* entry = c->task()->map().Lookup(vaddr);
    mach::VmPage* page = nullptr;
    if (entry != nullptr && entry->object == c->object()) {
      page = c->object()->Lookup(entry->OffsetOf(vaddr));
    }
    f->slots[a].page = page;
    return Ok(page != nullptr && page->owner == c);
  });
}

extern "C" uint64_t HipecJitBridgeReplacement(JitFrame* f, uint64_t a, uint64_t b,
                                              uint64_t kind) {
  return Guarded(f, [&]() -> uint64_t {
    // Charge order matches the interpreter: surcharge first, then the empty-queue check.
    Kctx(f).Charge(Kctx(f).costs->complex_command_ns);
    mach::PageQueue* queue = f->slots[a].queue;
    if (queue->empty()) {
      throw PolicyError("replacement-policy command on an empty queue");
    }
    mach::VmPage* victim;
    if (static_cast<DispatchKind>(kind) == DispatchKind::kFifo) {
      // Arrival order: the head is the oldest.
      victim = queue->DequeueHead();
    } else {
      mach::VmPage* best = nullptr;
      if (static_cast<DispatchKind>(kind) == DispatchKind::kLru) {
        queue->ForEach([&](mach::VmPage* p) {
          if (best == nullptr || p->last_reference_ns < best->last_reference_ns) {
            best = p;
          }
          return true;
        });
      } else {
        queue->ForEach([&](mach::VmPage* p) {
          if (best == nullptr || p->last_reference_ns >= best->last_reference_ns) {
            best = p;
          }
          return true;
        });
      }
      queue->Remove(best);
      victim = best;
    }
    f->slots[b].page = victim;
    f->executor->counters().Add(kCtrPolicyCommands);
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeMigrate(JitFrame* f, uint64_t a, uint64_t b, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    OperandEntry& A = f->slots[a];
    mach::VmPage* page = RequirePage(static_cast<uint8_t>(a), A);
    if (page->owner != f->container) {
      throw PolicyError("Migrate of a frame the application does not own");
    }
    if (page->queue != nullptr) {
      throw PolicyError("Migrate of a page still on a queue (DeQueue it first)");
    }
    int64_t target = LoadInt(f->slots[b]);
    bool cond = Manager(f)->MigrateFrame(f->container, page, static_cast<uint64_t>(target));
    if (cond) {
      A.page = nullptr;
    }
    return Ok(cond);
  });
}

extern "C" uint64_t HipecJitBridgeUnlink(JitFrame* f, uint64_t a, uint64_t, uint64_t) {
  return Guarded(f, [&]() -> uint64_t {
    mach::VmPage* page = RequirePage(static_cast<uint8_t>(a), f->slots[a]);
    if (page->owner != f->container) {
      throw PolicyError("Unlink of a frame the application does not own");
    }
    if (page->queue == nullptr) {
      throw PolicyError("Unlink of a page that is not on a queue");
    }
    page->queue.load()->Remove(page);
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeWeightedSelect(JitFrame* f, uint64_t a, uint64_t b,
                                                 uint64_t is_max) {
  return Guarded(f, [&]() -> uint64_t {
    // Charge order matches the interpreter: surcharge first, then the empty-queue check.
    Kctx(f).Charge(Kctx(f).costs->complex_command_ns);
    mach::PageQueue* queue = f->slots[a].queue;
    if (queue->empty()) {
      throw PolicyError("replacement-policy command on an empty queue");
    }
    mach::VmPage* best = nullptr;
    if (is_max != 0) {
      queue->ForEach([&](mach::VmPage* p) {
        if (best == nullptr || p->user_word > best->user_word) {
          best = p;
        }
        return true;
      });
    } else {
      queue->ForEach([&](mach::VmPage* p) {
        if (best == nullptr || p->user_word < best->user_word) {
          best = p;
        }
        return true;
      });
    }
    queue->Remove(best);
    f->slots[b].page = best;
    f->executor->counters().Add(kCtrPolicyCommands);
    return 0;
  });
}

extern "C" uint64_t HipecJitBridgeSatDot(JitFrame* f, uint64_t a, uint64_t b, uint64_t n) {
  return Guarded(f, [&]() -> uint64_t {
    f->slots[a].int_value =
        SatDotSlots(f->slots, static_cast<uint8_t>(b), static_cast<int>(n));
    return 0;
  });
}

}  // namespace internal

void JitFrame::RefreshHorizon() {
  sim::VirtualClock* vclock = ExecutorAccess::Kctx(executor).vclock;
  if (vclock == nullptr) {
    return;  // real-threads mode: no charge code is emitted, the horizon is never read
  }
  horizon = vclock->charge_horizon();
}

JitProgram::~JitProgram() {
#if HIPEC_JIT_HAVE_MMAP
  if (buffer_ != nullptr) {
    munmap(buffer_, size_);
  }
#endif
}

bool Available() {
#if defined(__x86_64__) && HIPEC_JIT_HAVE_MMAP
  return true;
#else
  return false;
#endif
}

void SetUnsupportedKindForTesting(DispatchKind kind, bool unsupported) {
  g_kind_masked[static_cast<uint8_t>(kind)] = unsupported;
}

std::unique_ptr<JitProgram> Compile(const DecodedProgram& program,
                                    const OperandArray& operands,
                                    const CompileOptions& options) {
#if defined(__x86_64__) && HIPEC_JIT_HAVE_MMAP
  const size_t n_events = program.events.size();
  std::vector<internal::EventArtifact> artifacts(n_events);
  std::vector<bool> compiled(n_events, false);
  size_t total = 0;
  for (size_t ev = 0; ev < n_events; ++ev) {
    const DecodedEvent& stream = program.events[ev];
    if (!stream.present()) {
      continue;
    }
    if (!internal::EmitEventX86(stream, operands, options, static_cast<int>(ev),
                                &artifacts[ev])) {
      continue;  // a kind is masked out: this event falls back to the interpreter
    }
    compiled[ev] = true;
    total = ((total + 15) & ~size_t{15}) + artifacts[ev].code.size();
  }
  if (total == 0) {
    return nullptr;
  }

  // W^X: fill the buffer read-write, then flip it to read-execute. Never both at once.
  void* buffer = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS,
                      -1, 0);
  if (buffer == MAP_FAILED) {
    return nullptr;
  }
  std::vector<JitEventCode> events(n_events);
  std::vector<JitFragment> fragments;
  size_t at = 0;
  for (size_t ev = 0; ev < n_events; ++ev) {
    if (!compiled[ev]) {
      continue;
    }
    at = (at + 15) & ~size_t{15};
    internal::EventArtifact& art = artifacts[ev];
    std::memcpy(static_cast<uint8_t*>(buffer) + at, art.code.data(), art.code.size());
    events[ev].code_offset = static_cast<uint32_t>(at);
    events[ev].code_size = static_cast<uint32_t>(art.code.size());
    for (JitFragment frag : art.fragments) {
      frag.offset += static_cast<uint32_t>(at);
      fragments.push_back(frag);
    }
    at += art.code.size();
  }
  if (mprotect(buffer, total, PROT_READ | PROT_EXEC) != 0) {
    munmap(buffer, total);
    return nullptr;
  }
  for (size_t ev = 0; ev < n_events; ++ev) {
    if (compiled[ev]) {
      events[ev].entry = reinterpret_cast<JitEntry>(
          reinterpret_cast<uintptr_t>(buffer) + events[ev].code_offset);
    }
  }
  return std::make_unique<JitProgram>(buffer, total, std::move(events), std::move(fragments));
#else
  (void)program;
  (void)operands;
  (void)options;
  return nullptr;
#endif
}

namespace {

const char* DispatchKindName(DispatchKind kind) {
  static const char* const kNames[kDispatchKindCount] = {
      "Return",         "Jump",           "Activate",       "ArithAdd",
      "ArithSub",       "ArithMul",       "ArithDiv",       "ArithMod",
      "ArithMov",       "ArithLoadImm",   "CompGt",         "CompLt",
      "CompEq",         "CompNe",         "CompGe",         "CompLe",
      "LogicAnd",       "LogicOr",        "LogicXor",       "LogicNot",
      "EmptyQ",         "InQ",            "DeQueueHead",    "DeQueueTail",
      "EnQueueHead",    "EnQueueTail",    "Request",        "ReleaseQueue",
      "ReleasePage",    "Flush",          "SetReference",   "SetModify",
      "RefBit",         "ModBit",         "Find",           "Fifo",
      "Lru",            "Mru",            "Migrate",        "Unlink",
      "WeightedSelectMin", "WeightedSelectMax", "SatDotProduct", "PageWordLoad",
      "PageWordStore",
      "FusedCompGtJump", "FusedCompLtJump", "FusedCompEqJump", "FusedCompNeJump",
      "FusedCompGeJump", "FusedCompLeJump", "FusedDeqHeadEnqHead", "FusedDeqHeadEnqTail",
      "FusedLoadImmArith", "TrapError",    "TrapOutside",
  };
  const auto i = static_cast<uint8_t>(kind);
  return i < kDispatchKindCount ? kNames[i] : "?";
}

}  // namespace

std::string DumpJit(const JitProgram& program) {
  std::string out;
  char line[160];
  const uint8_t* base = program.buffer();
  int current_event = -1;
  for (const JitFragment& frag : program.fragments()) {
    if (frag.event != current_event) {
      current_event = frag.event;
      const JitEventCode* code = program.Code(frag.event);
      std::snprintf(line, sizeof(line), "event %d: %u bytes @ +0x%x\n", frag.event,
                    code != nullptr ? code->code_size : 0,
                    code != nullptr ? code->code_offset : 0);
      out += line;
    }
    if (frag.cc == 0xfffe) {
      std::snprintf(line, sizeof(line), "  [+0x%04x] prologue (%u bytes)\n", frag.offset,
                    frag.size);
    } else if (frag.cc == 0xffff) {
      std::snprintf(line, sizeof(line), "  [+0x%04x] exit stubs (%u bytes)\n", frag.offset,
                    frag.size);
    } else {
      std::snprintf(line, sizeof(line), "  [+0x%04x] cc %u %s (%u bytes)\n", frag.offset,
                    frag.cc, DispatchKindName(frag.kind), frag.size);
    }
    out += line;
    for (uint32_t row = 0; row < frag.size; row += 16) {
      std::snprintf(line, sizeof(line), "    %04x:", frag.offset + row);
      out += line;
      for (uint32_t i = row; i < frag.size && i < row + 16; ++i) {
        std::snprintf(line, sizeof(line), " %02x", base[frag.offset + i]);
        out += line;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace hipec::core::jit
