#include "hipec/decoded.h"

#include <sstream>
#include <utility>

#include "hipec/jit.h"

namespace hipec::core {
namespace {

// Classifies the commands of one event stream. The check order and messages per command are
// the security checker's static-scan contract (§4.3.3) — tests match on these substrings.
class EventDecoder {
 public:
  EventDecoder(const PolicyProgram& program, const OperandArray& operands, int event,
               std::vector<DecodeDiag>* diags)
      : program_(program), operands_(operands), event_(event), diags_(diags) {}

  DecodedEvent Run() {
    const EventProgram& stream = program_.event(event_);
    DecodedEvent out;
    if (stream.words.empty()) {
      return out;  // event not defined
    }
    // One trap slot below the first command (the magic word / jump-to-zero target) and one
    // past the last, so the interpreter never needs a bounds check.
    out.insts.resize(stream.words.size() + 1);
    for (size_t cc = 1; cc < stream.words.size(); ++cc) {
      cc_ = static_cast<int>(cc);
      inst_ = Instruction::Decode(stream.words[cc]);
      trap_.clear();
      out_ = DecodedInst{};
      out_.raw_op = static_cast<uint8_t>(inst_.op);
      Classify(stream);
      if (!trap_.empty()) {
        out_.kind = DispatchKind::kTrapError;
        out_.target = static_cast<uint16_t>(out.traps.size());
        out.traps.push_back(std::move(trap_));
      }
      out.insts[cc] = out_;
    }
    return out;
  }

 private:
  // Records an install-time diagnostic; the first one per command also becomes the command's
  // run-time trap message.
  void Error(const std::string& message) {
    if (diags_ != nullptr) {
      diags_->push_back(DecodeDiag{event_, cc_, message});
    }
    if (trap_.empty()) {
      trap_ = message;
    }
  }

  // --- operand-kind checks (identical predicates to the pre-IR validator) --------------------

  bool IsIntReadable(uint8_t index) const {
    OperandType t = operands_.TypeOf(index);
    return t == OperandType::kInt || t == OperandType::kQueueCount;
  }
  bool IsIntWritable(uint8_t index) const {
    return operands_.TypeOf(index) == OperandType::kInt && !operands_.entry(index).read_only;
  }
  bool IsPage(uint8_t index) const { return operands_.TypeOf(index) == OperandType::kPage; }
  bool IsQueue(uint8_t index) const { return operands_.TypeOf(index) == OperandType::kQueue; }

  void WantIntReadable(uint8_t index, const char* role) {
    if (!IsIntReadable(index)) {
      Error(std::string(role) + ": operand is not an integer");
    }
  }
  void WantIntWritable(uint8_t index, const char* role) {
    if (!IsIntWritable(index)) {
      Error(std::string(role) + ": operand is not a writable integer");
    }
  }
  void WantPage(uint8_t index, const char* role) {
    if (!IsPage(index)) {
      Error(std::string(role) + ": operand is not a page variable");
    }
  }
  void WantQueue(uint8_t index, const char* role) {
    if (!IsQueue(index)) {
      Error(std::string(role) + ": operand is not a queue");
    }
  }
  // Returns the zero-based sub-operation (flag - lo) or -1 after diagnosing.
  int WantFlagRange(uint8_t flag, uint8_t lo, uint8_t hi, const char* role) {
    if (flag < lo || flag > hi) {
      Error(std::string(role) + ": flag out of range");
      return -1;
    }
    return flag - lo;
  }

  // Fuses opcode + flag into the dense kind, `base` being the kind of sub-operation `lo`.
  void FuseFlag(DispatchKind base, uint8_t flag, uint8_t lo, uint8_t hi, const char* role) {
    int sub = WantFlagRange(flag, lo, hi, role);
    if (sub >= 0) {
      out_.kind = static_cast<DispatchKind>(static_cast<int>(base) + sub);
    }
  }

  void Classify(const EventProgram& stream) {
    if (!IsValidOpcode(static_cast<uint8_t>(inst_.op))) {
      Error("invalid operator code");
      // Legacy run-time wording, kept so a bypassing harness sees the same failure text.
      trap_ = "invalid operator code reached the executor";
      return;
    }
    out_.a = inst_.op1;
    out_.b = inst_.op2;
    switch (inst_.op) {
      case Opcode::kReturn:
        out_.kind = DispatchKind::kReturn;
        // Return's operand may be any defined entry (or 0 when nothing is returned). The
        // engine reads it leniently, so this never traps — install-time diagnostic only.
        if (inst_.op1 != 0 && operands_.TypeOf(inst_.op1) == OperandType::kUnset) {
          if (diags_ != nullptr) {
            diags_->push_back(DecodeDiag{event_, cc_, "Return: undefined operand"});
          }
        }
        break;
      case Opcode::kArith:
        WantIntWritable(inst_.op1, "Arith dst");
        FuseFlag(DispatchKind::kArithAdd, inst_.op3, 1, 7, "Arith op");
        if (inst_.op3 != static_cast<uint8_t>(ArithOp::kLoadImm)) {
          WantIntReadable(inst_.op2, "Arith src");
        }
        break;
      case Opcode::kComp:
        WantIntReadable(inst_.op1, "Comp lhs");
        WantIntReadable(inst_.op2, "Comp rhs");
        FuseFlag(DispatchKind::kCompGt, inst_.op3, 1, 6, "Comp op");
        break;
      case Opcode::kLogic:
        WantIntWritable(inst_.op1, "Logic dst");
        WantIntReadable(inst_.op2, "Logic src");
        FuseFlag(DispatchKind::kLogicAnd, inst_.op3, 1, 4, "Logic op");
        break;
      case Opcode::kEmptyQ:
        out_.kind = DispatchKind::kEmptyQ;
        WantQueue(inst_.op1, "EmptyQ");
        break;
      case Opcode::kInQ:
        out_.kind = DispatchKind::kInQ;
        WantQueue(inst_.op1, "InQ queue");
        WantPage(inst_.op2, "InQ page");
        break;
      case Opcode::kJump:
        out_.kind = DispatchKind::kJump;
        if (inst_.op3 < 1 || static_cast<size_t>(inst_.op3) >= stream.words.size()) {
          Error("Jump: target outside the event stream");
          // A taken jump must still fail exactly like the legacy interpreter ("control fell
          // outside the command stream"), not at decode time: redirect to trap slot 0.
          trap_.clear();
          out_.target = 0;
        } else {
          out_.target = inst_.op3;
        }
        break;
      case Opcode::kDeQueue:
        WantPage(inst_.op1, "DeQueue dst");
        WantQueue(inst_.op2, "DeQueue queue");
        FuseFlag(DispatchKind::kDeQueueHead, inst_.op3, 1, 2, "DeQueue end");
        break;
      case Opcode::kEnQueue:
        WantPage(inst_.op1, "EnQueue page");
        WantQueue(inst_.op2, "EnQueue queue");
        FuseFlag(DispatchKind::kEnQueueHead, inst_.op3, 1, 2, "EnQueue end");
        break;
      case Opcode::kRequest:
        out_.kind = DispatchKind::kRequest;
        WantIntReadable(inst_.op1, "Request size");
        WantQueue(inst_.op2, "Request dst queue");
        break;
      case Opcode::kRelease:
        // Type-dependent behavior resolved at decode time.
        if (IsQueue(inst_.op1)) {
          out_.kind = DispatchKind::kReleaseQueue;
        } else if (IsPage(inst_.op1)) {
          out_.kind = DispatchKind::kReleasePage;
        } else {
          Error("Release: operand is neither a page nor a queue");
        }
        break;
      case Opcode::kFlush:
        out_.kind = DispatchKind::kFlush;
        WantPage(inst_.op1, "Flush");
        break;
      case Opcode::kSet:
        WantPage(inst_.op1, "Set page");
        FuseFlag(DispatchKind::kSetReference, inst_.op2, 1, 2, "Set bit");
        WantFlagRange(inst_.op3, 0, 1, "Set value");
        out_.b = inst_.op3;  // the bit value; the bit selector is fused into the kind
        break;
      case Opcode::kRef:
        out_.kind = DispatchKind::kRefBit;
        WantPage(inst_.op1, "Ref");
        break;
      case Opcode::kMod:
        out_.kind = DispatchKind::kModBit;
        WantPage(inst_.op1, "Mod");
        break;
      case Opcode::kFind:
        out_.kind = DispatchKind::kFind;
        WantPage(inst_.op1, "Find dst");
        WantIntReadable(inst_.op2, "Find vaddr");
        break;
      case Opcode::kActivate:
        // The interpreter re-checks the event at Activate time (same failure text as a
        // top-level dispatch of an undefined event), so this is diagnostic-only too.
        out_.kind = DispatchKind::kActivate;
        if (!program_.HasEvent(inst_.op1) && diags_ != nullptr) {
          diags_->push_back(DecodeDiag{event_, cc_, "Activate: no such event"});
        }
        break;
      case Opcode::kFifo:
        out_.kind = DispatchKind::kFifo;
        WantQueue(inst_.op1, "replacement-policy queue");
        WantPage(inst_.op2, "replacement-policy dst");
        break;
      case Opcode::kLru:
        out_.kind = DispatchKind::kLru;
        WantQueue(inst_.op1, "replacement-policy queue");
        WantPage(inst_.op2, "replacement-policy dst");
        break;
      case Opcode::kMru:
        out_.kind = DispatchKind::kMru;
        WantQueue(inst_.op1, "replacement-policy queue");
        WantPage(inst_.op2, "replacement-policy dst");
        break;
      case Opcode::kMigrate:
        out_.kind = DispatchKind::kMigrate;
        WantPage(inst_.op1, "Migrate page");
        WantIntReadable(inst_.op2, "Migrate target container id");
        break;
      case Opcode::kUnlink:
        out_.kind = DispatchKind::kUnlink;
        WantPage(inst_.op1, "Unlink");
        break;
      case Opcode::kWeightedSelect:
        WantQueue(inst_.op1, "WeightedSelect queue");
        WantPage(inst_.op2, "WeightedSelect dst");
        FuseFlag(DispatchKind::kWeightedSelectMin, inst_.op3, 1, 2, "WeightedSelect mode");
        break;
      case Opcode::kSatDotProduct: {
        WantIntWritable(inst_.op1, "SatDotProduct dst");
        int n = WantFlagRange(inst_.op3, 1, static_cast<uint8_t>(kMaxDotWidth),
                              "SatDotProduct width");
        if (n >= 0) {
          out_.kind = DispatchKind::kSatDotProduct;
          // The width rides in `target` so the executor and JIT never re-read the raw word.
          out_.target = inst_.op3;
          // 2n consecutive slots starting at op2: n weights then n features. The range must
          // stay inside the operand array and every slot must be a readable integer.
          if (static_cast<int>(inst_.op2) + 2 * inst_.op3 > 256) {
            Error("SatDotProduct operands: vector runs past the operand array");
          } else {
            for (int i = 0; i < 2 * inst_.op3; ++i) {
              if (!IsIntReadable(static_cast<uint8_t>(inst_.op2 + i))) {
                Error("SatDotProduct operands: operand is not an integer");
                break;
              }
            }
          }
        }
        break;
      }
      case Opcode::kPageWord:
        WantPage(inst_.op1, "PageWord page");
        FuseFlag(DispatchKind::kPageWordLoad, inst_.op3, 1, 2, "PageWord op");
        if (inst_.op3 == static_cast<uint8_t>(PageWordOp::kLoad)) {
          WantIntWritable(inst_.op2, "PageWord dst");
        } else if (inst_.op3 == static_cast<uint8_t>(PageWordOp::kStore)) {
          WantIntReadable(inst_.op2, "PageWord src");
        }
        break;
    }
  }

  const PolicyProgram& program_;
  const OperandArray& operands_;
  int event_;
  std::vector<DecodeDiag>* diags_;
  int cc_ = 0;
  Instruction inst_;
  DecodedInst out_;
  std::string trap_;
};

// Greedy left-to-right superinstruction pass over one decoded event. A pair (cc, cc+1) fuses
// only when cc+1 is not a jump target anywhere in the event — fused execution never stops
// between the two halves, so control must not be able to enter at the second one. The second
// slot keeps its original decoding (jumps that do land on it execute it stand-alone), and the
// fused record replaces the first slot, skipping the shadowed slot on fall-through.
void FuseEvent(DecodedEvent* event) {
  if (event->insts.size() < 4) {
    return;  // fewer than two real commands: nothing to pair
  }
  std::vector<bool> is_jump_target(event->insts.size(), false);
  for (const DecodedInst& inst : event->insts) {
    if (inst.kind == DispatchKind::kJump) {
      is_jump_target[inst.target] = true;
    }
  }
  // Real commands occupy [1, insts.size() - 2]; the pair needs both in range.
  for (size_t cc = 1; cc + 2 < event->insts.size(); ++cc) {
    if (is_jump_target[cc + 1]) {
      continue;
    }
    DecodedInst& first = event->insts[cc];
    const DecodedInst& second = event->insts[cc + 1];
    // Comp ; Jump → compare-and-branch. The jump's target is already resolved (including the
    // redirect-to-trap-slot-0 for out-of-range targets), so it transfers verbatim.
    if (first.kind >= DispatchKind::kCompGt && first.kind <= DispatchKind::kCompLe &&
        second.kind == DispatchKind::kJump) {
      first.kind = static_cast<DispatchKind>(
          static_cast<int>(DispatchKind::kFusedCompGtJump) +
          (static_cast<int>(first.kind) - static_cast<int>(DispatchKind::kCompGt)));
      first.target = second.target;
      ++cc;
      continue;
    }
    // DeQueue head ; EnQueue of the page just dequeued → queue-to-queue move.
    if (first.kind == DispatchKind::kDeQueueHead &&
        (second.kind == DispatchKind::kEnQueueHead ||
         second.kind == DispatchKind::kEnQueueTail) &&
        second.a == first.a) {
      first.kind = second.kind == DispatchKind::kEnQueueHead
                       ? DispatchKind::kFusedDeqHeadEnqHead
                       : DispatchKind::kFusedDeqHeadEnqTail;
      first.target = second.b;
      ++cc;
      continue;
    }
    // Arith LoadImm ; Arith (non-LoadImm) → constant-feed arithmetic.
    if (first.kind == DispatchKind::kArithLoadImm &&
        second.kind >= DispatchKind::kArithAdd && second.kind <= DispatchKind::kArithMov) {
      first.kind = DispatchKind::kFusedLoadImmArith;
      first.target = static_cast<uint16_t>((static_cast<uint16_t>(second.a) << 8) | second.b);
      first.reserved = static_cast<uint16_t>(second.kind);
      ++cc;
      continue;
    }
  }
}

}  // namespace

DecodedProgram DecodePolicy(const PolicyProgram& program, const OperandArray& operands,
                            std::vector<DecodeDiag>* diags, bool fuse_superinstructions) {
  DecodedProgram decoded;
  decoded.events.resize(static_cast<size_t>(program.event_limit()));
  for (int ev = 0; ev < program.event_limit(); ++ev) {
    DecodedEvent& event = decoded.events[static_cast<size_t>(ev)];
    event = EventDecoder(program, operands, ev, diags).Run();
    if (fuse_superinstructions) {
      FuseEvent(&event);
    }
    // Eligibility is judged on the final (post-fusion) stream: what the JIT would compile.
    event.jit_eligible = event.present();
    for (const DecodedInst& inst : event.insts) {
      if (!jit::KindSupported(inst.kind)) {
        event.jit_eligible = false;
        break;
      }
    }
  }
  return decoded;
}

std::string Disassemble(const PolicyProgram& program) {
  std::ostringstream os;
  static const char* kWellKnown[] = {"PageFault", "ReclaimFrame"};
  for (int ev = 0; ev < program.event_limit(); ++ev) {
    if (!program.HasEvent(ev)) {
      continue;
    }
    os << "Event " << ev;
    if (ev < 2) {
      os << " (" << kWellKnown[ev] << ")";
    }
    os << ":\n";
    const EventProgram& stream = program.event(ev);
    for (size_t cc = 1; cc < stream.words.size(); ++cc) {
      os << "  " << cc << ": " << Instruction::Decode(stream.words[cc]).ToString() << "\n";
    }
  }
  return os.str();
}

}  // namespace hipec::core
