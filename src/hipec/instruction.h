// The HiPEC command set (§4.2, Table 1).
//
// A command is one 32-bit word: an 8-bit operator code and up to three 8-bit operands. An
// operand is usually an index into the container's 256-entry operand array; for some commands
// it is a flag (comparison kind, queue end, ...) or a branch target.
//
// Control flow follows the paper's Table 2 listing: *test* commands (Comp, Logic, EmptyQ,
// InQ, Ref, Mod — and those whose success is testable: Request, Flush, Find, Release) set the
// container's condition flag; every other command clears it; `Jump` branches when the flag is
// FALSE. This single rule reproduces the paper's example byte-for-byte semantics, where every
// "/* else */ Jump" follows a test and every unconditional jump follows a non-test command.
//
// Operand-index assignments inside the paper's own Table 2 listing are internally
// inconsistent (e.g. the _inactive_queue is fetched with operand 00 at CC 3 but 05 at CC 18);
// this implementation defines a canonical standard layout instead (see operand.h) and
// documents the deviation.
#ifndef HIPEC_HIPEC_INSTRUCTION_H_
#define HIPEC_HIPEC_INSTRUCTION_H_

#include <cstdint>
#include <optional>
#include <string>

namespace hipec::core {

// Operator codes, binary values exactly as listed in Table 1.
enum class Opcode : uint8_t {
  kReturn = 0x00,
  kArith = 0x01,
  kComp = 0x02,
  kLogic = 0x03,
  kEmptyQ = 0x04,
  kInQ = 0x05,
  kJump = 0x06,
  kDeQueue = 0x07,
  kEnQueue = 0x08,
  kRequest = 0x09,
  kRelease = 0x0A,
  kFlush = 0x0B,
  kSet = 0x0C,
  kRef = 0x0D,
  kMod = 0x0E,
  kFind = 0x0F,
  kActivate = 0x10,
  kFifo = 0x11,
  kLru = 0x12,
  kMru = 0x13,
  // --- extension commands (§6: "adding new HiPEC commands is easy") -------------------------
  // Migrate the frame in page-var op1 to the container whose id is in int operand op2
  // (the paper's first future-work item: "migrating physical frames between the relevant
  // jobs"). The target must have registered with accepts_migration; the frame arrives on its
  // private free list (dirty contents are flushed first). Condition flag = success.
  kMigrate = 0x14,
  // Remove the page in page-var op1 from whichever of this container's queues it is on, so a
  // policy can segregate pages into user-defined queues (e.g. a DBMS buffer manager keeping
  // index and heap pages apart).
  kUnlink = 0x15,
  // --- rank/score eviction commands (ROADMAP item 4: policy zoo) -----------------------------
  // Scan queue op1 and dequeue the page whose per-page scratch word is smallest (flag op3 = 1)
  // or largest (flag op3 = 2), writing it into page-var op2. The scratch word is the one
  // kPageWord reads and writes; ties keep the page nearest the head (stable). Charged as a
  // complex command like FIFO/LRU/MRU; executing it on an empty queue terminates the policy.
  kWeightedSelect = 0x16,
  // Saturating dot product for perceptron-style scoring: int operand op1 (writable) receives
  // sum over i in [0, n) of slots[op2 + i] * slots[op2 + n + i], where n = flag op3 in [1, 8].
  // The n weight slots and n feature slots must all be readable integers. Every multiply and
  // accumulate saturates to [INT64_MIN, INT64_MAX] instead of wrapping, so a runaway weight
  // cannot flip a score's sign.
  kSatDotProduct = 0x17,
  // Per-page scratch-word access: flag op3 = 1 loads the scratch word of the page in page-var
  // op1 into writable int operand op2; flag op3 = 2 stores readable int operand op2 into the
  // page's scratch word. The scratch word lives on the frame (VmPage::user_word), survives
  // queue moves, and is zeroed when the frame is recycled to a new owner.
  kPageWord = 0x18,
};

// Derived from the enum (last opcode + 1) so adding a command cannot silently desynchronize
// the name table or the decoder's dispatch mapping; static_asserts in instruction.cc and the
// exhaustive classifier switch in decoded.cc both key off this. Keep kPageWord the last member.
inline constexpr int kOpcodeCount = static_cast<int>(Opcode::kPageWord) + 1;
// Commands 0x00..0x13 are the paper's original set (Table 1).
inline constexpr int kPaperOpcodeCount = 20;

// Arith sub-operations (flag byte). In-place: op1 = op1 OP op2.
enum class ArithOp : uint8_t {
  kAdd = 1,
  kSub = 2,
  kMul = 3,
  kDiv = 4,
  kMod = 5,
  kMov = 6,      // op1 = op2
  kLoadImm = 7,  // op1 = literal op2 (0..255)
};

// Comp sub-operations (flag byte). Sets the condition flag to (op1 OP op2).
enum class CompOp : uint8_t {
  kGt = 1,  // Table 2 CC1 uses flag 01 for '>'
  kLt = 2,  // Table 2 (Lack_Free_Frame) CC1 uses flag 02 for '<'
  kEq = 3,
  kNe = 4,
  kGe = 5,
  kLe = 6,
};

// Logic sub-operations (flag byte). op1 = op1 OP op2 (booleanized); condition flag = result.
enum class LogicOp : uint8_t {
  kAnd = 1,
  kOr = 2,
  kXor = 3,
  kNot = 4,  // op1 = !op2
};

// Queue-end flag for DeQueue/EnQueue.
enum class QueueEnd : uint8_t {
  kHead = 1,
  kTail = 2,
};

// Which page bit Set manipulates (flag1), and to what (flag2: 0 clear / 1 set).
enum class PageBit : uint8_t {
  kReference = 1,
  kModify = 2,
};

// Scan direction flag for WeightedSelect.
enum class SelectMode : uint8_t {
  kMin = 1,
  kMax = 2,
};

// Access flag for PageWord.
enum class PageWordOp : uint8_t {
  kLoad = 1,
  kStore = 2,
};

// The widest dot product kSatDotProduct accepts (n = flag op3). Bounds the operand-range
// check in the decoder and the per-command cost the SecurityChecker's static scan assumes.
inline constexpr int kMaxDotWidth = 8;

struct Instruction {
  Opcode op = Opcode::kReturn;
  uint8_t op1 = 0;
  uint8_t op2 = 0;
  uint8_t op3 = 0;

  uint32_t Encode() const {
    return (static_cast<uint32_t>(op) << 24) | (static_cast<uint32_t>(op1) << 16) |
           (static_cast<uint32_t>(op2) << 8) | static_cast<uint32_t>(op3);
  }

  static Instruction Decode(uint32_t word) {
    return Instruction{static_cast<Opcode>(word >> 24), static_cast<uint8_t>(word >> 16),
                       static_cast<uint8_t>(word >> 8), static_cast<uint8_t>(word)};
  }

  bool operator==(const Instruction&) const = default;

  // "Comp 02,0C >" style rendering for listings and diagnostics.
  std::string ToString() const;
};

// True for commands that *set* the condition flag; all others clear it (see file comment).
bool SetsCondition(Opcode op);

// Mnemonic name ("Comp", "DeQueue", ...). nullopt for invalid codes.
std::optional<std::string> OpcodeName(Opcode op);
// Reverse lookup used by the assembler.
std::optional<Opcode> OpcodeFromName(const std::string& name);

// Whether the raw 8-bit code is one of the 20 defined commands.
bool IsValidOpcode(uint8_t code);

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_INSTRUCTION_H_
