// The application-specific policy executor (§4.3.2): invoked by the page-fault handler or the
// global frame manager, it runs the container's pre-decoded policy program — entirely in
// kernel mode, with no kernel/user crossing. Per command it charges only the fetch+decode
// cost (Table 4: ~50 ns each).
//
// Since the decode-once refactor the hot path is table-driven dispatch over the DecodedProgram
// IR (decoded.h): raw words were classified and bounds-checked when the policy was installed,
// so the interpreter does no per-event decoding, no operand re-classification, and no
// per-iteration bounds check (control that leaves the stream lands on a trap slot). The
// pre-IR switch interpreter is retained as a selectable reference path so every policy can be
// run against both implementations and their command-by-command traces compared; it will be
// deleted once the transition window closes.
//
// At the start of every event the executor writes a timestamp into the container; the
// security checker uses it to detect runaway policies. The container's CC (command counter)
// tracks the next command; execution ends at `Return`.
#ifndef HIPEC_HIPEC_EXECUTOR_H_
#define HIPEC_HIPEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hipec/container.h"
#include "hipec/frame_manager.h"
#include "mach/kernel.h"
#include "obs/probe.h"

namespace hipec::core {

namespace jit {
struct ExecutorAccess;
}  // namespace jit

enum class ExecOutcome {
  kOk,
  kTimeout,  // killed by the security checker (or the runaway backstop)
  kError,    // PolicyError: bad operand use, empty dequeue, fell off the stream, ...
};

struct ExecResult {
  ExecOutcome outcome = ExecOutcome::kOk;
  std::string error;
  // Operand index named by the Return command (the PageFault event returns the page there).
  uint8_t return_operand = 0;
  int64_t commands_executed = 0;

  bool ok() const { return outcome == ExecOutcome::kOk; }
};

// Which engine runs the policy. kDecodedIr is the interpreter production path;
// kReferenceSwitch is the pre-IR decode-per-event loop kept for dual-path equivalence testing
// and before/after benchmarking; kJit runs install-time-compiled native code (jit.h) and
// falls back to kDecodedIr per event when no compiled code exists (unsupported host, masked
// kind, compile failure) — the fallbacks are counted in executor.jit_fallbacks.
enum class DispatchMode {
  kDecodedIr,
  kReferenceSwitch,
  kJit,
};

// One executed command, as observed by an attached trace sink: the CC and operator code of
// the command plus the condition flag *after* it ran. Both interpreters emit identical
// streams for identical programs — the dual-path tests assert exactly that.
struct ExecTrace {
  int event;
  uint16_t cc;
  uint8_t opcode;
  bool condition;

  bool operator==(const ExecTrace&) const = default;
};

// Saturating 64-bit arithmetic used by the SatDotProduct command. One definition shared by
// the IR interpreter, the reference interpreter and the JIT bridge, so the three paths
// cannot drift at the overflow boundaries the differential suite probes.
int64_t SatAdd64(int64_t a, int64_t b);
int64_t SatMul64(int64_t a, int64_t b);
// The SatDotProduct kernel: saturating sum over i in [0, n) of
// slots[base + i] * slots[base + n + i]. The decoder guaranteed every slot is a readable
// integer and the range stays inside the 256-entry array.
int64_t SatDotSlots(const OperandEntry* slots, uint8_t base, int n);

class PolicyExecutor {
 public:
  PolicyExecutor(mach::Kernel* kernel, GlobalFrameManager* manager);
  PolicyExecutor(const PolicyExecutor&) = delete;
  PolicyExecutor& operator=(const PolicyExecutor&) = delete;

  // Executes one event of the container's policy to completion. Charges the per-invocation
  // dispatch cost plus one decode cost per command executed.
  ExecResult ExecuteEvent(Container* container, int event);

  // Hard backstop against runaway policies, in commands per top-level event invocation. The
  // adaptive security checker normally fires much earlier (in virtual time); this bound only
  // protects the simulation host.
  void set_max_commands(int64_t n) { max_commands_ = n; }

  DispatchMode dispatch_mode() const { return mode_; }
  void set_dispatch_mode(DispatchMode mode) { mode_ = mode; }

  // Selects the computed-goto ("threaded") IR loop. Only compiled on GNU-compatible
  // compilers, where it is the default; elsewhere the setting is accepted and ignored and
  // the portable dense-switch loop runs. Both loops are instantiated from the same body
  // (dispatch_loop.inc), so behavior is identical either way.
  bool threaded_dispatch() const { return threaded_dispatch_; }
  void set_threaded_dispatch(bool on) { threaded_dispatch_ = on; }

  // Attaches (or detaches, with nullptr) a per-command trace sink. Tracing is off the hot
  // path behind a single predicted-not-taken branch.
  void set_trace_sink(std::vector<ExecTrace>* sink) { trace_ = sink; }

  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }

  // Arms the stats sinks for real-threads mode. The executor itself needs no lock: every
  // event runs under the owning container's task lock (faults) or a try-lock on the victim's
  // task (reclaim), and the condition flag is thread-local.
  void EnableConcurrent();

 private:
  // All return the Return instruction's operand index. Depth guards Activate recursion.
  // RunEventIr picks the IR loop variant per threaded_dispatch_; the two variants are the
  // same body (dispatch_loop.inc) instantiated with different dispatch mechanisms.
  uint8_t RunEventIr(Container* container, int event, int depth, int64_t* budget);
  uint8_t RunEventIrSwitch(Container* container, int event, int depth, int64_t* budget);
#if defined(__GNUC__)
  uint8_t RunEventIrThreaded(Container* container, int event, int depth, int64_t* budget);
#endif
  uint8_t RunEventSwitch(Container* container, int event, int depth, int64_t* budget);
  // Runs compiled code for the event if the container has any (compiling lazily on first
  // use), decoding the JitStatus back into the interpreter's control flow; falls back to
  // RunEventIr otherwise. The JIT's Activate bridge re-enters here via jit::ExecutorAccess.
  uint8_t RunEventJit(Container* container, int event, int depth, int64_t* budget);

  friend struct jit::ExecutorAccess;

  // Reference-path command implementations (decode-per-event interpreter only).
  void DoArith(Container* c, const Instruction& inst);
  void DoWeightedSelect(Container* c, const Instruction& inst);
  void DoSatDotProduct(Container* c, const Instruction& inst);
  void DoPageWord(Container* c, const Instruction& inst);
  void DoComp(Container* c, const Instruction& inst);
  void DoLogic(Container* c, const Instruction& inst);
  void DoSet(Container* c, const Instruction& inst);
  void DoDeQueue(Container* c, const Instruction& inst);
  void DoEnQueue(Container* c, const Instruction& inst);
  void DoRequest(Container* c, const Instruction& inst);
  void DoRelease(Container* c, const Instruction& inst);
  void DoFlush(Container* c, const Instruction& inst);
  void DoFind(Container* c, const Instruction& inst);
  void DoReplacementPolicy(Container* c, const Instruction& inst);

  mach::Kernel* kernel_;
  GlobalFrameManager* manager_;
  int64_t max_commands_ = 50'000'000;
  // The condition flag (see instruction.h). Thread-local: in real-threads mode each fault
  // thread interprets its own container's policy; the flag is pure per-execution state.
  static thread_local bool condition_;
  DispatchMode mode_ = DispatchMode::kDecodedIr;
#if defined(__GNUC__)
  bool threaded_dispatch_ = true;
#else
  bool threaded_dispatch_ = false;
#endif
  std::vector<ExecTrace>* trace_ = nullptr;
  sim::CounterSet counters_;
  obs::ProbeSet probes_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_EXECUTOR_H_
