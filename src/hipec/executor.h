// The application-specific policy executor (§4.3.2): invoked by the page-fault handler or the
// global frame manager, it fetches HiPEC commands from the policy buffer, decodes them, and
// executes the corresponding operations — entirely in kernel mode, with no kernel/user
// crossing. Per command it charges only the fetch+decode cost (Table 4: ~50 ns each).
//
// At the start of every event the executor writes a timestamp into the container; the
// security checker uses it to detect runaway policies. The container's CC (command counter)
// tracks the next command; execution ends at `Return`.
#ifndef HIPEC_HIPEC_EXECUTOR_H_
#define HIPEC_HIPEC_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "hipec/container.h"
#include "hipec/frame_manager.h"
#include "mach/kernel.h"

namespace hipec::core {

enum class ExecOutcome {
  kOk,
  kTimeout,  // killed by the security checker (or the runaway backstop)
  kError,    // PolicyError: bad operand use, empty dequeue, fell off the stream, ...
};

struct ExecResult {
  ExecOutcome outcome = ExecOutcome::kOk;
  std::string error;
  // Operand index named by the Return command (the PageFault event returns the page there).
  uint8_t return_operand = 0;
  int64_t commands_executed = 0;

  bool ok() const { return outcome == ExecOutcome::kOk; }
};

class PolicyExecutor {
 public:
  PolicyExecutor(mach::Kernel* kernel, GlobalFrameManager* manager);
  PolicyExecutor(const PolicyExecutor&) = delete;
  PolicyExecutor& operator=(const PolicyExecutor&) = delete;

  // Executes one event of the container's policy to completion. Charges the per-invocation
  // dispatch cost plus one decode cost per command executed.
  ExecResult ExecuteEvent(Container* container, int event);

  // Hard backstop against runaway policies, in commands per top-level event invocation. The
  // adaptive security checker normally fires much earlier (in virtual time); this bound only
  // protects the simulation host.
  void set_max_commands(int64_t n) { max_commands_ = n; }

  sim::CounterSet& counters() { return counters_; }

 private:
  // Returns the Return instruction's operand index. Depth guards Activate recursion.
  uint8_t RunEvent(Container* container, int event, int depth, int64_t* budget);

  // Individual command implementations. Each returns the next CC (or kReturnSentinel).
  void DoArith(Container* c, const Instruction& inst);
  void DoComp(Container* c, const Instruction& inst);
  void DoLogic(Container* c, const Instruction& inst);
  void DoSet(Container* c, const Instruction& inst);
  void DoDeQueue(Container* c, const Instruction& inst);
  void DoEnQueue(Container* c, const Instruction& inst);
  void DoRequest(Container* c, const Instruction& inst);
  void DoRelease(Container* c, const Instruction& inst);
  void DoFlush(Container* c, const Instruction& inst);
  void DoFind(Container* c, const Instruction& inst);
  void DoReplacementPolicy(Container* c, const Instruction& inst);

  mach::Kernel* kernel_;
  GlobalFrameManager* manager_;
  int64_t max_commands_ = 50'000'000;
  bool condition_ = false;  // the condition flag (see instruction.h)
  sim::CounterSet counters_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_EXECUTOR_H_
