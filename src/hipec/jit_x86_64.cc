// The x86-64 template emitter: one hand-written machine-code fragment per DispatchKind,
// stitched per event with resolved rel32 jump targets.
//
// Register plan (SysV, all callee-saved so the bridges preserve them):
//   r12  JitFrame*                        rbx  operand-slot base (OperandEntry[256])
//   r13  budget VALUE (live counter)      rbp  &Container::kill_requested (1-byte flag)
//   r15  &PolicyExecutor::condition_      r14  virtual now VALUE (deterministic mode only)
//
// r13 and r14 hold live VALUES, not addresses: the per-command budget decrement is one
// register dec and the decode-cost charge is add+cmp with no memory traffic. The price is a
// spill/reload pair around every call into C++ — a bridge can consume budget (a nested
// Activate shares the counter through JitFrame::budget) and advance the clock — and a final
// spill in the shared epilogue so the wrapper always sees current memory. Bridges are on the
// cold path (queue ops are inlined below), so the trade wins.
//
// The condition flag deliberately lives in MEMORY (through r15), not in a register: Activate
// and any Request-triggered reclaim re-enter policy execution, and the nested event shares the
// executor's thread-local flag. One byte store per command epilogue keeps every nesting level
// coherent, exactly like the interpreter's `condition_ = cond`.
//
// Per-command shape mirrors dispatch_loop.inc byte-for-byte in observable order:
//   prologue: kill check -> budget decrement -> decode-cost charge (inlined virtual-clock
//             fast path against the cached horizon, out-of-line bridge stub on the slow path)
//   body:     inlined (arith/comp/logic/jump/bits/EmptyQ/InQ/queue splices/fused pairs) or a
//             bridge call
//   epilogue: store condition byte, optional trace bridge, fall through / branch
// Trap-outside slots raise *before* the prologue, matching the interpreter's loop-top check.
//
// Exit protocol: rax holds a JitStatus (jit.h). Bridges return 0/1 for ok/condition; any
// value > 1 is a status the stitched code returns immediately (`cmp rax,1; ja epilogue`).
#include <cstring>
#include <deque>
#include <vector>

#include "hipec/jit_internal.h"

#if defined(__x86_64__)

namespace hipec::core::jit::internal {
namespace {

// --- registers -----------------------------------------------------------------------------
constexpr int RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7;
constexpr int R12 = 12, R13 = 13, R14 = 14, R15 = 15;

// --- condition codes (Jcc 0F 8x / SETcc 0F 9x low nibble) ----------------------------------
constexpr uint8_t CC_E = 0x4, CC_NE = 0x5, CC_A = 0x7, CC_S = 0x8;
constexpr uint8_t CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF;
constexpr uint8_t CC_Z = CC_E, CC_NZ = CC_NE;

constexpr const char kOutsideMsg[] = "control fell outside the command stream";

// A minimal one-pass assembler: byte vector + rel32 labels with back-patching. Memory
// operands always use the mod=10 disp32 form (with the SIB byte rsp/r12 require), and a REX
// prefix is always emitted — uniform encodings over minimal ones; this is cold install-time
// code producing a few KB per policy.
struct Asm {
  std::vector<uint8_t> code;

  struct Label {
    int32_t pos = -1;
    std::vector<uint32_t> fixups;
  };

  void Byte(uint8_t v) { code.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) Byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void Rex(bool w, int reg, int rm) {
    Byte(static_cast<uint8_t>(0x40 | (w ? 8 : 0) | (((reg >> 3) & 1) << 2) | ((rm >> 3) & 1)));
  }
  void ModMem(int reg, int base, int32_t disp) {
    Byte(static_cast<uint8_t>(0x80 | ((reg & 7) << 3) | (base & 7)));
    if ((base & 7) == RSP) Byte(0x24);  // SIB: base only
    U32(static_cast<uint32_t>(disp));
  }
  void ModReg(int reg, int rm) {
    Byte(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  void Bind(Label* l) {
    l->pos = static_cast<int32_t>(code.size());
    for (uint32_t at : l->fixups) Patch(at, l->pos);
    l->fixups.clear();
  }
  void Patch(uint32_t at, int32_t target) {
    int32_t rel = target - static_cast<int32_t>(at + 4);
    std::memcpy(code.data() + at, &rel, 4);
  }
  void Ref(Label* l) {
    if (l->pos >= 0) {
      U32(static_cast<uint32_t>(l->pos - (static_cast<int32_t>(code.size()) + 4)));
    } else {
      l->fixups.push_back(static_cast<uint32_t>(code.size()));
      U32(0);
    }
  }
  void Jmp(Label* l) { Byte(0xE9); Ref(l); }
  void Jcc(uint8_t cc, Label* l) { Byte(0x0F); Byte(static_cast<uint8_t>(0x80 | cc)); Ref(l); }

  // mov r64, [base+disp] / mov [base+disp], r64 / mov r64, r64
  void MovRM(int dst, int base, int32_t disp) { Rex(1, dst, base); Byte(0x8B); ModMem(dst, base, disp); }
  void MovMR(int base, int32_t disp, int src) { Rex(1, src, base); Byte(0x89); ModMem(src, base, disp); }
  void MovRR(int dst, int src) { Rex(1, src, dst); Byte(0x89); ModReg(src, dst); }
  // mov r32, imm32 (zero-extends) / mov r64, imm64
  void MovRI32(int reg, uint32_t imm) { Rex(0, 0, reg); Byte(static_cast<uint8_t>(0xB8 | (reg & 7))); U32(imm); }
  void MovRI64(int reg, uint64_t imm) { Rex(1, 0, reg); Byte(static_cast<uint8_t>(0xB8 | (reg & 7))); U64(imm); }
  // mov qword [m], sext(imm32) / mov dword [m], imm32 / mov byte [m], imm8 / mov byte [m], r8
  void StoreQImm(int base, int32_t disp, int32_t imm) { Rex(1, 0, base); Byte(0xC7); ModMem(0, base, disp); U32(static_cast<uint32_t>(imm)); }
  void StoreDImm(int base, int32_t disp, uint32_t imm) { Rex(0, 0, base); Byte(0xC7); ModMem(0, base, disp); U32(imm); }
  void StoreBImm(int base, int32_t disp, uint8_t imm) { Rex(0, 0, base); Byte(0xC6); ModMem(0, base, disp); Byte(imm); }
  void StoreBReg(int base, int32_t disp, int src) { Rex(0, src, base); Byte(0x88); ModMem(src, base, disp); }
  // movzx r64, byte [m] / movzx r64, r8
  void LoadBZx(int dst, int base, int32_t disp) { Rex(1, dst, base); Byte(0x0F); Byte(0xB6); ModMem(dst, base, disp); }
  void MovzxRR8(int dst, int src) { Rex(1, dst, src); Byte(0x0F); Byte(0xB6); ModReg(dst, src); }
  // compares
  void CmpBImm(int base, int32_t disp, uint8_t imm) { Rex(0, 0, base); Byte(0x80); ModMem(7, base, disp); Byte(imm); }
  void CmpQImm8(int base, int32_t disp, int8_t imm) { Rex(1, 0, base); Byte(0x83); ModMem(7, base, disp); Byte(static_cast<uint8_t>(imm)); }
  void CmpRM(int reg, int base, int32_t disp) { Rex(1, reg, base); Byte(0x3B); ModMem(reg, base, disp); }
  void CmpRR(int a, int b) { Rex(1, b, a); Byte(0x39); ModReg(b, a); }  // cmp a, b
  void CmpRI8(int reg, int8_t imm) { Rex(1, 0, reg); Byte(0x83); ModReg(7, reg); Byte(static_cast<uint8_t>(imm)); }
  // arithmetic
  void AddRI32(int reg, int32_t imm) { Rex(1, 0, reg); Byte(0x81); ModReg(0, reg); U32(static_cast<uint32_t>(imm)); }
  void SubRI32(int reg, int32_t imm) { Rex(1, 0, reg); Byte(0x81); ModReg(5, reg); U32(static_cast<uint32_t>(imm)); }
  void AddMR(int base, int32_t disp, int src) { Rex(1, src, base); Byte(0x01); ModMem(src, base, disp); }
  void SubMR(int base, int32_t disp, int src) { Rex(1, src, base); Byte(0x29); ModMem(src, base, disp); }
  void ImulRM(int dst, int base, int32_t disp) { Rex(1, dst, base); Byte(0x0F); Byte(0xAF); ModMem(dst, base, disp); }
  void DecQ(int base, int32_t disp) { Rex(1, 0, base); Byte(0xFF); ModMem(1, base, disp); }
  void IncQ(int base, int32_t disp) { Rex(1, 0, base); Byte(0xFF); ModMem(0, base, disp); }
  void DecR(int reg) { Rex(1, 0, reg); Byte(0xFF); ModReg(1, reg); }
  void Cqo() { Byte(0x48); Byte(0x99); }
  void IdivR(int reg) { Rex(1, 0, reg); Byte(0xF7); ModReg(7, reg); }
  // logic / tests
  void TestRR(int a, int b) { Rex(1, b, a); Byte(0x85); ModReg(b, a); }
  void TestRR8(int a, int b) { Rex(0, b, a); Byte(0x84); ModReg(b, a); }
  void Setcc(uint8_t cc, int reg) { Rex(0, 0, reg); Byte(0x0F); Byte(static_cast<uint8_t>(0x90 | cc)); ModReg(0, reg); }
  void AndRR8(int dst, int src) { Rex(0, src, dst); Byte(0x20); ModReg(src, dst); }
  void OrRR8(int dst, int src) { Rex(0, src, dst); Byte(0x08); ModReg(src, dst); }
  void XorRR8(int dst, int src) { Rex(0, src, dst); Byte(0x30); ModReg(src, dst); }
  void XorRR32(int reg) { Rex(0, reg, reg); Byte(0x31); ModReg(reg, reg); }
  // calls / stack / return
  void CallR(int reg) { Rex(0, 0, reg); Byte(0xFF); ModReg(2, reg); }
  void Push(int reg) { if (reg >= 8) Byte(0x41); Byte(static_cast<uint8_t>(0x50 | (reg & 7))); }
  void Pop(int reg) { if (reg >= 8) Byte(0x41); Byte(static_cast<uint8_t>(0x58 | (reg & 7))); }
  void SubRsp8(int8_t v) { Byte(0x48); Byte(0x83); Byte(0xEC); Byte(static_cast<uint8_t>(v)); }
  void AddRsp8(int8_t v) { Byte(0x48); Byte(0x83); Byte(0xC4); Byte(static_cast<uint8_t>(v)); }
  void Ret() { Byte(0xC3); }
};

// setcc code for a compare kind, shared by kComp* and kFusedComp*Jump (both blocks are in
// CompOp order: Gt, Lt, Eq, Ne, Ge, Le).
uint8_t CompCC(int sub) {
  static constexpr uint8_t kMap[6] = {CC_G, CC_L, CC_E, CC_NE, CC_GE, CC_LE};
  return kMap[sub];
}

uint64_t BridgeAddr(uint64_t (*fn)(JitFrame*, uint64_t, uint64_t, uint64_t)) {
  return reinterpret_cast<uint64_t>(fn);
}

}  // namespace

bool EmitEventX86(const DecodedEvent& stream, const OperandArray& operands,
                  const CompileOptions& options, int event, EventArtifact* out) {
  for (const DecodedInst& inst : stream.insts) {
    if (KindMasked(inst.kind)) {
      return false;
    }
  }
  const HostOffsets& off = Offsets();
  const size_t n = stream.insts.size();

  Asm a;
  std::vector<Asm::Label> slots(n);
  Asm::Label Lep, Lkill, Lbudget, Loutside;
  // Out-of-line error exits reached from inlined bodies. std::deque: labels must not move
  // once referenced.
  struct ErrorStub {
    Asm::Label label;
    const char* msg;
    uint8_t status;  // JitStatus 4 or 5
    uint8_t operand;
  };
  std::deque<ErrorStub> error_stubs;
  auto StaticError = [&](const char* msg) {
    error_stubs.push_back({{}, msg, 4, 0});
    return &error_stubs.back().label;
  };
  auto OperandError = [&](const char* msg, uint8_t operand) {
    error_stubs.push_back({{}, msg, 5, operand});
    return &error_stubs.back().label;
  };

  std::vector<JitFragment> frags;
  auto AddFrag = [&](uint16_t cc, DispatchKind kind, size_t start) {
    frags.push_back(JitFragment{event, cc, kind, static_cast<uint32_t>(start),
                                static_cast<uint32_t>(a.code.size() - start)});
  };

  auto SlotDisp = [&](uint8_t idx, uint32_t field) {
    return static_cast<int32_t>(idx * off.op_size + field);
  };
  // The decode-time operand classification is baked in: a kQueueCount slot loads
  // queue->count_, anything else (kInt) loads int_value — LoadInt without the branch.
  auto LoadIntTo = [&](int dst, uint8_t idx) {
    if (operands.TypeOf(idx) == OperandType::kQueueCount) {
      a.MovRM(dst, RBX, SlotDisp(idx, off.op_queue));
      a.MovRM(dst, dst, static_cast<int32_t>(off.q_count));
    } else {
      a.MovRM(dst, RBX, SlotDisp(idx, off.op_int));
    }
  };

  // r13 (budget) and r14 (virtual now) are live values; every call into C++ must see them
  // in memory first — a nested Activate consumes budget through JitFrame::budget and any
  // bridge may advance the clock — and must be assumed to have changed both.
  auto SpillHot = [&](int scratch) {
    a.MovRM(scratch, R12, static_cast<int32_t>(off.f_budget));
    a.MovMR(scratch, 0, R13);
    if (options.deterministic) {
      a.MovRM(scratch, R12, static_cast<int32_t>(off.f_now));
      a.MovMR(scratch, 0, R14);
    }
  };
  auto ReloadHot = [&](int scratch) {
    a.MovRM(scratch, R12, static_cast<int32_t>(off.f_budget));
    a.MovRM(R13, scratch, 0);
    if (options.deterministic) {
      a.MovRM(scratch, R12, static_cast<int32_t>(off.f_now));
      a.MovRM(R14, scratch, 0);
    }
  };

  auto EmitBridge = [&](uint64_t (*fn)(JitFrame*, uint64_t, uint64_t, uint64_t), uint32_t a1,
                        uint32_t a2, uint32_t a3) {
    SpillHot(RSI);
    a.MovRR(RDI, R12);
    a.MovRI32(RSI, a1);
    a.MovRI32(RDX, a2);
    a.MovRI32(RCX, a3);
    a.MovRI64(RAX, BridgeAddr(fn));
    a.CallR(RAX);
    ReloadHot(RSI);
  };
  // After a bridge: rax <= 1 is ok/condition, anything above is a status to return.
  auto EmitStatusCheck = [&]() {
    a.CmpRI8(RAX, 1);
    a.Jcc(CC_A, &Lep);
  };

  // Out-of-line slow paths for the per-command charge: undo the tentative add, bridge into
  // VirtualClock::Advance (which fires the due events), resume. std::deque — labels must not
  // move once referenced.
  struct ChargeStub {
    Asm::Label slow;
    Asm::Label back;
  };
  std::deque<ChargeStub> charge_stubs;

  // The per-command prologue: kill flag, budget backstop, decode-cost charge. The charge
  // inlines VirtualClock::Advance's fast path: `now + delta < horizon` (the cached earliest
  // deadline) means no event fires and advancing is a register add — the tentatively-added
  // r14 simply stays. Otherwise the out-of-line stub takes over. In real-threads mode
  // Charge() is a no-op, so nothing is emitted.
  auto EmitGuards = [&]() {
    a.CmpBImm(RBP, 0, 0);
    a.Jcc(CC_NE, &Lkill);
    a.DecR(R13);
    a.Jcc(CC_S, &Lbudget);
    if (options.deterministic) {
      charge_stubs.push_back({});
      ChargeStub& stub = charge_stubs.back();
      if (options.decode_ns != 0) {
        a.AddRI32(R14, static_cast<int32_t>(options.decode_ns));
      }
      a.CmpRM(R14, R12, static_cast<int32_t>(off.f_horizon));
      a.Jcc(CC_GE, &stub.slow);
      a.Bind(&stub.back);
    }
  };

  enum CondSrc { kCondZero, kCondFromAl, kCondFromMem };
  auto EmitTrace = [&](uint16_t cc, uint8_t op, CondSrc src) {
    Asm::Label skip;
    a.CmpQImm8(R12, static_cast<int32_t>(off.f_trace), 0);
    a.Jcc(CC_E, &skip);
    switch (src) {  // arg 3 (rcx) first: kCondFromAl must read al before rax is clobbered
      case kCondZero: a.XorRR32(RCX); break;
      case kCondFromAl: a.MovzxRR8(RCX, RAX); break;
      case kCondFromMem: a.LoadBZx(RCX, R15, 0); break;
    }
    SpillHot(RSI);
    a.MovRR(RDI, R12);
    a.MovRI32(RSI, cc);
    a.MovRI32(RDX, op);
    a.MovRI64(RAX, BridgeAddr(HipecJitBridgeTrace));
    a.CallR(RAX);
    ReloadHot(RSI);
    a.TestRR(RAX, RAX);
    a.Jcc(CC_NZ, &Lep);
    a.Bind(&skip);
  };

  // Command epilogues (dispatch_next): latch the condition flag, trace, fall through to the
  // next slot (which is emitted immediately after).
  auto NonTestTail = [&](uint16_t cc, uint8_t op) {
    a.StoreBImm(R15, 0, 0);
    EmitTrace(cc, op, kCondZero);
  };
  auto TestTailFromAl = [&](uint16_t cc, uint8_t op) {
    a.StoreBReg(R15, 0, RAX);
    EmitTrace(cc, op, kCondFromAl);
  };

  // The arithmetic core, shared by kArith* and the fused LoadImm;Arith second half.
  auto EmitArithCore = [&](DispatchKind kind, uint8_t dst, uint8_t src) {
    const int32_t dst_int = SlotDisp(dst, off.op_int);
    switch (kind) {
      case DispatchKind::kArithAdd:
        LoadIntTo(RAX, src);
        a.AddMR(RBX, dst_int, RAX);
        break;
      case DispatchKind::kArithSub:
        LoadIntTo(RAX, src);
        a.SubMR(RBX, dst_int, RAX);
        break;
      case DispatchKind::kArithMul:
        LoadIntTo(RAX, src);
        a.ImulRM(RAX, RBX, dst_int);
        a.MovMR(RBX, dst_int, RAX);
        break;
      case DispatchKind::kArithDiv:
      case DispatchKind::kArithMod: {
        const bool is_div = kind == DispatchKind::kArithDiv;
        LoadIntTo(RCX, src);
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, StaticError(is_div ? "Arith: division by zero" : "Arith: modulo by zero"));
        a.MovRM(RAX, RBX, dst_int);
        a.Cqo();
        a.IdivR(RCX);
        a.MovMR(RBX, dst_int, is_div ? RAX : RDX);
        break;
      }
      default:  // kArithMov — mirrors the interpreter's default arm
        LoadIntTo(RAX, src);
        a.MovMR(RBX, dst_int, RAX);
        break;
    }
  };

  // The inlined intrusive-queue splices. "Inward" is the link pointing into the list from
  // the end being worked (q_next at the head, q_prev at the tail); the opposite link of an
  // end element is null by list invariant, which the splices exploit.
  //
  // DeQueue{Head,Tail}: PageQueue::Remove specialized to an end element — detach it, fix the
  // neighbor's back link (or the far anchor when the queue empties), null its membership,
  // decrement the count, store it into the page slot. The empty-queue error fires exactly
  // where the interpreter's does.
  auto EmitDeqCore = [&](bool take_tail, uint8_t dst, uint8_t qslot) {
    const auto end_off = static_cast<int32_t>(take_tail ? off.q_tail : off.q_head);
    const auto far_off = static_cast<int32_t>(take_tail ? off.q_head : off.q_tail);
    const auto inward_off = static_cast<int32_t>(take_tail ? off.pg_q_prev : off.pg_q_next);
    const auto outward_off = static_cast<int32_t>(take_tail ? off.pg_q_next : off.pg_q_prev);
    a.MovRM(RCX, RBX, SlotDisp(qslot, off.op_queue));
    a.MovRM(RAX, RCX, end_off);
    a.TestRR(RAX, RAX);
    a.Jcc(CC_Z, StaticError("DeQueue from an empty queue (guard with EmptyQ or a count)"));
    a.MovRM(RDX, RAX, inward_off);  // the new end (null when this was the only element)
    a.MovMR(RCX, end_off, RDX);
    Asm::Label fixup, done;
    a.TestRR(RDX, RDX);
    a.Jcc(CC_NZ, &fixup);
    a.StoreQImm(RCX, far_off, 0);  // queue is now empty
    a.Jmp(&done);
    a.Bind(&fixup);
    a.StoreQImm(RDX, outward_off, 0);  // the new end has no outward neighbor
    a.Bind(&done);
    a.StoreQImm(RAX, inward_off, 0);  // the outward link was already null (it was the end)
    a.StoreQImm(RAX, static_cast<int32_t>(off.pg_queue), 0);
    a.DecQ(RCX, static_cast<int32_t>(off.q_count));
    a.MovMR(RBX, SlotDisp(dst, off.op_page), RAX);
  };

  // EnQueue{Head,Tail}: the interpreter's three checks (operand holds a page, the container
  // owns it, it is not already queued) in the same order with the same messages, then the
  // PageQueue::Enqueue* splice. enqueue_ns takes r14 — the already-charged virtual now,
  // which is exactly what kctx.now() reads in the interpreter's handler — so this core is
  // deterministic-mode only (real-threads mode keeps the bridge and its real-clock read).
  auto EmitEnqCore = [&](bool at_tail, uint8_t pslot, uint8_t qslot) {
    const auto end_off = static_cast<int32_t>(at_tail ? off.q_tail : off.q_head);
    const auto far_off = static_cast<int32_t>(at_tail ? off.q_head : off.q_tail);
    const auto inward_off = static_cast<int32_t>(at_tail ? off.pg_q_prev : off.pg_q_next);
    const auto outward_off = static_cast<int32_t>(at_tail ? off.pg_q_next : off.pg_q_prev);
    a.MovRM(RAX, RBX, SlotDisp(pslot, off.op_page));
    a.TestRR(RAX, RAX);
    a.Jcc(CC_Z, OperandError("page variable is empty", pslot));
    a.MovRM(RDX, R12, static_cast<int32_t>(off.f_container));
    a.CmpRM(RDX, RAX, static_cast<int32_t>(off.pg_owner));
    a.Jcc(CC_NE, StaticError("EnQueue of a frame the application does not own"));
    a.CmpQImm8(RAX, static_cast<int32_t>(off.pg_queue), 0);
    a.Jcc(CC_NE, StaticError("EnQueue of a page that is already on a queue"));
    a.MovRM(RCX, RBX, SlotDisp(qslot, off.op_queue));
    a.MovMR(RAX, static_cast<int32_t>(off.pg_queue), RCX);  // the release store, as one mov
    a.MovMR(RAX, static_cast<int32_t>(off.pg_enqueue_ns), R14);
    a.StoreQImm(RAX, outward_off, 0);
    a.MovRM(RDX, RCX, end_off);  // the old end (null when the queue is empty)
    a.MovMR(RAX, inward_off, RDX);
    Asm::Label link, done;
    a.TestRR(RDX, RDX);
    a.Jcc(CC_NZ, &link);
    a.MovMR(RCX, far_off, RAX);  // was empty: the page becomes both ends
    a.Jmp(&done);
    a.Bind(&link);
    a.MovMR(RDX, outward_off, RAX);  // the old end gains an outward neighbor
    a.Bind(&done);
    a.MovMR(RCX, end_off, RAX);
    a.IncQ(RCX, static_cast<int32_t>(off.q_count));
  };

  // --- event prologue ------------------------------------------------------------------------
  {
    const size_t start = a.code.size();
    a.Push(RBP); a.Push(RBX); a.Push(R12); a.Push(R13); a.Push(R14); a.Push(R15);
    a.SubRsp8(8);  // entry rsp%16==8; 6 pushes keep it — realign for the bridge call sites
    a.MovRR(R12, RDI);
    a.MovRM(RBX, R12, static_cast<int32_t>(off.f_slots));
    a.MovRM(RAX, R12, static_cast<int32_t>(off.f_budget));
    a.MovRM(R13, RAX, 0);
    a.MovRM(R15, R12, static_cast<int32_t>(off.f_condition));
    a.MovRM(RBP, R12, static_cast<int32_t>(off.f_kill));
    if (options.deterministic) {
      a.MovRM(RAX, R12, static_cast<int32_t>(off.f_now));
      a.MovRM(R14, RAX, 0);
    }
    a.Jmp(&slots[1]);  // execution starts at slot 1; slot 0 is the magic word's trap
    AddFrag(0xfffe, DispatchKind::kTrapOutside, start);
  }

  // --- one fragment per slot -----------------------------------------------------------------
  for (size_t cc = 0; cc < n; ++cc) {
    const DecodedInst& d = stream.insts[cc];
    a.Bind(&slots[cc]);
    const size_t start = a.code.size();
    const auto cc16 = static_cast<uint16_t>(cc);
    const auto kind_index = static_cast<uint8_t>(d.kind);

    switch (d.kind) {
      case DispatchKind::kTrapOutside:
        // Before the prologue: matches the interpreter's loop-top check, which fires before
        // the command is charged.
        a.Jmp(&Loutside);
        break;

      case DispatchKind::kTrapError:
        EmitGuards();
        a.StoreDImm(R12, static_cast<int32_t>(off.f_trap_index), d.target);
        a.MovRI32(RAX, static_cast<uint32_t>(JitStatus::kErrorTrap));
        a.Jmp(&Lep);
        break;

      case DispatchKind::kReturn:
        EmitGuards();
        EmitTrace(cc16, d.raw_op, kCondFromMem);  // Return traces the *current* flag, no clear
        a.StoreQImm(R12, static_cast<int32_t>(off.f_return_operand), d.a);
        a.XorRR32(RAX);
        a.Jmp(&Lep);
        break;

      case DispatchKind::kJump: {
        EmitGuards();
        // Branches when the flag is FALSE. Decide first, then clear + trace on each tail —
        // the trace bridge clobbers the scratch registers.
        a.LoadBZx(RAX, R15, 0);
        a.StoreBImm(R15, 0, 0);
        a.TestRR8(RAX, RAX);
        Asm::Label taken;
        a.Jcc(CC_Z, &taken);
        EmitTrace(cc16, d.raw_op, kCondZero);
        a.Jmp(&slots[cc + 1]);
        a.Bind(&taken);
        EmitTrace(cc16, d.raw_op, kCondZero);
        a.Jmp(&slots[d.target]);
        break;
      }

      case DispatchKind::kActivate:
        EmitGuards();
        EmitBridge(HipecJitBridgeActivate, d.a, 0, 0);
        EmitStatusCheck();
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kArithAdd:
      case DispatchKind::kArithSub:
      case DispatchKind::kArithMul:
      case DispatchKind::kArithDiv:
      case DispatchKind::kArithMod:
      case DispatchKind::kArithMov:
        EmitGuards();
        EmitArithCore(d.kind, d.a, d.b);
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kArithLoadImm:
        EmitGuards();
        a.StoreQImm(RBX, SlotDisp(d.a, off.op_int), d.b);
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kCompGt:
      case DispatchKind::kCompLt:
      case DispatchKind::kCompEq:
      case DispatchKind::kCompNe:
      case DispatchKind::kCompGe:
      case DispatchKind::kCompLe:
        EmitGuards();
        LoadIntTo(RAX, d.a);
        LoadIntTo(RCX, d.b);
        a.CmpRR(RAX, RCX);
        a.Setcc(CompCC(kind_index - static_cast<uint8_t>(DispatchKind::kCompGt)), RAX);
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kLogicAnd:
      case DispatchKind::kLogicOr:
      case DispatchKind::kLogicXor:
        EmitGuards();
        a.MovRM(RAX, RBX, SlotDisp(d.a, off.op_int));  // A is a plain int (decoder-proven)
        a.TestRR(RAX, RAX);
        a.Setcc(CC_NE, RAX);
        LoadIntTo(RCX, d.b);
        a.TestRR(RCX, RCX);
        a.Setcc(CC_NE, RCX);
        if (d.kind == DispatchKind::kLogicAnd) {
          a.AndRR8(RAX, RCX);
        } else if (d.kind == DispatchKind::kLogicOr) {
          a.OrRR8(RAX, RCX);
        } else {
          a.XorRR8(RAX, RCX);  // (A!=0) != (B!=0)
        }
        a.MovzxRR8(RAX, RAX);
        a.MovMR(RBX, SlotDisp(d.a, off.op_int), RAX);
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kLogicNot:
        EmitGuards();
        LoadIntTo(RCX, d.b);
        a.TestRR(RCX, RCX);
        a.Setcc(CC_E, RAX);
        a.MovzxRR8(RAX, RAX);
        a.MovMR(RBX, SlotDisp(d.a, off.op_int), RAX);
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kEmptyQ:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.a, off.op_queue));
        a.CmpQImm8(RCX, static_cast<int32_t>(off.q_count), 0);
        a.Setcc(CC_E, RAX);
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kInQ:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.b, off.op_page));
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, OperandError("page variable is empty", d.b));
        a.MovRM(RAX, RCX, static_cast<int32_t>(off.pg_queue));
        a.CmpRM(RAX, RBX, SlotDisp(d.a, off.op_queue));
        a.Setcc(CC_E, RAX);
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kDeQueueHead:
      case DispatchKind::kDeQueueTail:
        EmitGuards();
        EmitDeqCore(d.kind == DispatchKind::kDeQueueTail, d.a, d.b);
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kEnQueueHead:
      case DispatchKind::kEnQueueTail:
        EmitGuards();
        if (options.deterministic) {
          EmitEnqCore(d.kind == DispatchKind::kEnQueueTail, d.a, d.b);
        } else {
          EmitBridge(HipecJitBridgeEnq, d.a, d.b,
                     d.kind == DispatchKind::kEnQueueTail ? 1 : 0);
          EmitStatusCheck();
        }
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kRequest:
        EmitGuards();
        EmitBridge(HipecJitBridgeRequest, d.a, d.b, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kReleaseQueue:
        EmitGuards();
        EmitBridge(HipecJitBridgeReleaseQueue, d.a, 0, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kReleasePage:
        EmitGuards();
        EmitBridge(HipecJitBridgeReleasePage, d.a, 0, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kFlush:
        EmitGuards();
        EmitBridge(HipecJitBridgeFlush, d.a, 0, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kSetReference:
      case DispatchKind::kSetModify:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.a, off.op_page));
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, OperandError("page variable is empty", d.a));
        a.StoreBImm(RCX,
                    static_cast<int32_t>(d.kind == DispatchKind::kSetReference
                                             ? off.pg_reference
                                             : off.pg_modified),
                    d.b != 0 ? 1 : 0);
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kRefBit:
      case DispatchKind::kModBit:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.a, off.op_page));
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, OperandError("page variable is empty", d.a));
        a.LoadBZx(RAX, RCX,
                  static_cast<int32_t>(d.kind == DispatchKind::kRefBit ? off.pg_reference
                                                                       : off.pg_modified));
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kFind:
        EmitGuards();
        EmitBridge(HipecJitBridgeFind, d.a, d.b, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kFifo:
      case DispatchKind::kLru:
      case DispatchKind::kMru:
        EmitGuards();
        EmitBridge(HipecJitBridgeReplacement, d.a, d.b, kind_index);
        EmitStatusCheck();
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kMigrate:
        EmitGuards();
        EmitBridge(HipecJitBridgeMigrate, d.a, d.b, 0);
        EmitStatusCheck();
        TestTailFromAl(cc16, d.raw_op);
        break;

      case DispatchKind::kUnlink:
        EmitGuards();
        EmitBridge(HipecJitBridgeUnlink, d.a, 0, 0);
        EmitStatusCheck();
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kWeightedSelectMin:
      case DispatchKind::kWeightedSelectMax:
        EmitGuards();
        EmitBridge(HipecJitBridgeWeightedSelect, d.a, d.b,
                   d.kind == DispatchKind::kWeightedSelectMax ? 1 : 0);
        EmitStatusCheck();
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kSatDotProduct:
        // A bridge call: the saturating kernel is shared with the interpreter (SatDotSlots),
        // so the two paths cannot drift at the overflow boundaries.
        EmitGuards();
        EmitBridge(HipecJitBridgeSatDot, d.a, d.b, d.target);
        EmitStatusCheck();
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kPageWordLoad:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.a, off.op_page));
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, OperandError("page variable is empty", d.a));
        a.MovRM(RAX, RCX, static_cast<int32_t>(off.pg_user_word));
        a.MovMR(RBX, SlotDisp(d.b, off.op_int), RAX);
        NonTestTail(cc16, d.raw_op);
        break;

      case DispatchKind::kPageWordStore:
        EmitGuards();
        a.MovRM(RCX, RBX, SlotDisp(d.a, off.op_page));
        a.TestRR(RCX, RCX);
        a.Jcc(CC_Z, OperandError("page variable is empty", d.a));
        LoadIntTo(RAX, d.b);
        a.MovMR(RCX, static_cast<int32_t>(off.pg_user_word), RAX);
        NonTestTail(cc16, d.raw_op);
        break;

      // --- superinstructions: both halves inline, with the inter-command prologue between —
      // trace/flag/charge order is byte-identical to the unfused stream. -------------------
      case DispatchKind::kFusedCompGtJump:
      case DispatchKind::kFusedCompLtJump:
      case DispatchKind::kFusedCompEqJump:
      case DispatchKind::kFusedCompNeJump:
      case DispatchKind::kFusedCompGeJump:
      case DispatchKind::kFusedCompLeJump: {
        EmitGuards();
        LoadIntTo(RAX, d.a);
        LoadIntTo(RCX, d.b);
        a.CmpRR(RAX, RCX);
        a.Setcc(CompCC(kind_index - static_cast<uint8_t>(DispatchKind::kFusedCompGtJump)),
                RAX);
        a.StoreBReg(R15, 0, RAX);
        EmitTrace(cc16, d.raw_op, kCondFromAl);
        EmitGuards();  // the Jump's own prologue
        a.LoadBZx(RAX, R15, 0);
        a.StoreBImm(R15, 0, 0);
        a.TestRR8(RAX, RAX);
        Asm::Label fall;
        a.Jcc(CC_NZ, &fall);
        EmitTrace(static_cast<uint16_t>(cc + 1), static_cast<uint8_t>(Opcode::kJump),
                  kCondZero);
        a.Jmp(&slots[d.target]);
        a.Bind(&fall);
        EmitTrace(static_cast<uint16_t>(cc + 1), static_cast<uint8_t>(Opcode::kJump),
                  kCondZero);
        a.Jmp(&slots[cc + 2]);
        break;
      }

      case DispatchKind::kFusedDeqHeadEnqHead:
      case DispatchKind::kFusedDeqHeadEnqTail:
        EmitGuards();
        EmitDeqCore(/*take_tail=*/false, d.a, d.b);
        a.StoreBImm(R15, 0, 0);
        EmitTrace(cc16, d.raw_op, kCondZero);
        EmitGuards();  // the EnQueue's own prologue
        if (options.deterministic) {
          EmitEnqCore(d.kind == DispatchKind::kFusedDeqHeadEnqTail,
                      d.a, static_cast<uint8_t>(d.target));
        } else {
          EmitBridge(HipecJitBridgeEnq, d.a, d.target,
                     d.kind == DispatchKind::kFusedDeqHeadEnqTail ? 1 : 0);
          EmitStatusCheck();
        }
        a.StoreBImm(R15, 0, 0);
        EmitTrace(static_cast<uint16_t>(cc + 1), static_cast<uint8_t>(Opcode::kEnQueue),
                  kCondZero);
        a.Jmp(&slots[cc + 2]);
        break;

      case DispatchKind::kFusedLoadImmArith:
        EmitGuards();
        a.StoreQImm(RBX, SlotDisp(d.a, off.op_int), d.b);
        a.StoreBImm(R15, 0, 0);
        EmitTrace(cc16, d.raw_op, kCondZero);
        EmitGuards();  // the Arith's own prologue
        EmitArithCore(static_cast<DispatchKind>(d.reserved),
                      static_cast<uint8_t>(d.target >> 8), static_cast<uint8_t>(d.target));
        a.StoreBImm(R15, 0, 0);
        EmitTrace(static_cast<uint16_t>(cc + 1), static_cast<uint8_t>(Opcode::kArith),
                  kCondZero);
        a.Jmp(&slots[cc + 2]);
        break;
    }
    AddFrag(cc16, d.kind, start);
  }

  // --- shared exit stubs ---------------------------------------------------------------------
  {
    const size_t start = a.code.size();
    // Charge slow paths: undo the tentative add (the bridge re-applies the full delta through
    // VirtualClock::Advance, firing due events), bridge, resume after the guard.
    for (ChargeStub& stub : charge_stubs) {
      a.Bind(&stub.slow);
      if (options.decode_ns != 0) {
        a.SubRI32(R14, static_cast<int32_t>(options.decode_ns));
      }
      EmitBridge(HipecJitBridgeCharge, static_cast<uint32_t>(options.decode_ns), 0, 0);
      a.TestRR(RAX, RAX);
      a.Jcc(CC_NZ, &Lep);
      a.Jmp(&stub.back);
    }
    a.Bind(&Lkill);
    a.MovRI32(RAX, static_cast<uint32_t>(JitStatus::kKill));
    a.Jmp(&Lep);
    a.Bind(&Lbudget);
    a.MovRI32(RAX, static_cast<uint32_t>(JitStatus::kBudget));
    a.Jmp(&Lep);
    a.Bind(&Loutside);
    a.MovRI64(RCX, reinterpret_cast<uint64_t>(kOutsideMsg));
    a.MovMR(R12, static_cast<int32_t>(off.f_error_msg), RCX);
    a.MovRI32(RAX, static_cast<uint32_t>(JitStatus::kErrorStatic));
    a.Jmp(&Lep);
    for (ErrorStub& stub : error_stubs) {
      a.Bind(&stub.label);
      a.MovRI64(RCX, reinterpret_cast<uint64_t>(stub.msg));
      a.MovMR(R12, static_cast<int32_t>(off.f_error_msg), RCX);
      if (stub.status == static_cast<uint8_t>(JitStatus::kErrorOperand)) {
        a.StoreDImm(R12, static_cast<int32_t>(off.f_error_operand), stub.operand);
      }
      a.MovRI32(RAX, stub.status);
      a.Jmp(&Lep);
    }
    a.Bind(&Lep);  // rax = JitStatus
    SpillHot(RCX);  // the wrapper reads budget (and the clock) from memory after return
    a.AddRsp8(8);
    a.Pop(R15); a.Pop(R14); a.Pop(R13); a.Pop(R12); a.Pop(RBX); a.Pop(RBP);
    a.Ret();
    AddFrag(0xffff, DispatchKind::kTrapOutside, start);
  }

  out->code = std::move(a.code);
  out->fragments = std::move(frags);
  return true;
}

}  // namespace hipec::core::jit::internal

#endif  // defined(__x86_64__)
