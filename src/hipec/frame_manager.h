// The global frame manager (§4.3.1): the pageout daemon extended to partition the centralized
// frame pool into per-application private lists. Implements the paper's four tasks:
//
//   * Balance      — the partition_burst watermark (default 50% of post-boot free frames)
//                    bounds the total frames held by all specific applications.
//   * Allocation   — minFrame admission at registration; all-or-nothing grants for the
//                    Request command.
//   * Deallocation — normal reclamation (FAFR: First Allocated, First Reclaimed, walking the
//                    container list and running each victim's ReclaimFrame event) and forced
//                    reclamation (seizing frames from the global allocation-time-ordered
//                    frame list, flushing dirty ones).
//   * I/O handling — the Flush command releases the dirty page to the manager and receives a
//                    clean frame from the reserve immediately; the write happens later, so
//                    the policy executor never waits on the disk.
#ifndef HIPEC_HIPEC_FRAME_MANAGER_H_
#define HIPEC_HIPEC_FRAME_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hipec/container.h"
#include "mach/kernel.h"
#include "obs/probe.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec::core {

// Victim-selection order for normal reclamation. The paper implements FAFR and calls the
// frame allocation/deallocation policy out as future work (§6); the alternatives exist for
// the reclamation ablation.
enum class ReclaimOrder {
  kFafr,          // First Allocated, First Reclaimed (container creation order) — the paper
  kRoundRobin,    // rotate the starting victim across reclamation rounds
  kLargestFirst,  // biggest surplus first
};

struct FrameManagerConfig {
  // partition_burst = fraction * (free frames after boot). The paper fixes 50%.
  double partition_burst_fraction = 0.5;
  // Clean frames kept aside for Flush exchanges.
  size_t reserve_frames = 64;
  ReclaimOrder reclaim_order = ReclaimOrder::kFafr;

  // Extension (§4.3.1 future work): "an adaptable or dynamically adjustable partition_burst".
  // When enabled, the watermark drifts between the min/max fractions: toward max while
  // specific requests are being rejected and the global daemon is idle, toward min while
  // non-specific applications are paging and no specific request has been denied.
  bool adaptive_burst = false;
  double burst_min_fraction = 0.25;
  double burst_max_fraction = 0.90;
  // Step per adjustment, as a fraction of post-boot free frames.
  double burst_step_fraction = 0.05;
  // Minimum virtual time between adjustments (pressure notifications arrive per fault).
  sim::Nanos burst_adapt_interval_ns = 250 * sim::kMillisecond;
};

class GlobalFrameManager {
 public:
  GlobalFrameManager(mach::Kernel* kernel, FrameManagerConfig config);
  GlobalFrameManager(const GlobalFrameManager&) = delete;
  GlobalFrameManager& operator=(const GlobalFrameManager&) = delete;

  // Arms the manager lock and stats sinks for real-threads mode. The lock (rank kManager,
  // recursive — victim teardown re-enters RemoveContainer) serializes every manager
  // decision; reaching *into* a victim task happens only through try-lock edges
  // (DESIGN.md §10). Real-mode disk completions are polled at each entry point, before the
  // manager lock is taken, so laundry returns need no extra thread.
  void EnableConcurrent();
  sim::OrderedMutex& mutex() const { return mu_; }

  // Runs a container's ReclaimFrame event asking it to release up to `n` frames and returns
  // how many were actually released; installed by the engine (the manager cannot depend on
  // the executor directly). If the policy misbehaves the runner may terminate the victim —
  // the container may be freed by the time the runner returns, so the manager must not touch
  // it afterwards.
  using ReclaimRunner = std::function<size_t(Container*, size_t)>;
  void SetReclaimRunner(ReclaimRunner runner) { reclaim_runner_ = std::move(runner); }

  // Invoked after every completed manager decision (admission, request, release, flush,
  // migration, container removal) with a short decision name. The scenario engine's invariant
  // auditor hangs off this hook; it must not allocate or free frames. Decisions nested inside
  // reclamation (a victim policy Releasing frames mid-Request) fire the hook too — manager
  // state is consistent at each of those boundaries.
  using DecisionHook = std::function<void(const char* decision)>;
  void SetDecisionHook(DecisionHook hook) { decision_hook_ = std::move(hook); }

  // --- Registration ---------------------------------------------------------------------------

  // Grants the container its minFrame pages onto its private free list. All-or-nothing; on
  // failure the container is untouched and the application "can either run as a non-specific
  // application or terminate and retry later".
  bool AdmitContainer(Container* container);

  // Returns every frame the container holds (on any private queue or in a page variable) to
  // the global pool and forgets the container.
  void RemoveContainer(Container* container);

  // --- The Request / Release / Flush commands -------------------------------------------------

  // All-or-nothing grant of `n` more frames onto `dest`. Rejected when the burst watermark or
  // free memory cannot accommodate it even after reclamation.
  bool RequestFrames(Container* container, size_t n, mach::PageQueue* dest);

  // Gives one frame (off-queue, owned by `container`) back to the global pool.
  void ReleaseFrame(Container* container, mach::VmPage* page);

  // Flush: takes a (possibly dirty) page. If dirty, its contents are queued for asynchronous
  // write-back and a clean frame from the reserve is returned in exchange; if the reserve is
  // empty the write is synchronous and the same frame is returned. Clean pages are returned
  // unchanged. The returned frame is what the policy should continue using.
  mach::VmPage* FlushExchange(Container* container, mach::VmPage* page);

  // Low-memory signal from the pageout daemon (via the engine): the adaptive watermark
  // reacts here, so non-specific pressure is seen even when no specific application is
  // making allocation calls.
  void OnMemoryPressure();

  // Extension (§6): migrates one frame (off-queue, owned by `from`) to the container whose
  // id is `target_id`. Succeeds only if the target exists, is not the source, and registered
  // with accepts_migration; dirty contents are flushed and the frame lands on the target's
  // private free list.
  bool MigrateFrame(Container* from, mach::VmPage* page, uint64_t target_id);

  // --- Introspection --------------------------------------------------------------------------

  size_t partition_burst() const { return partition_burst_; }
  size_t total_specific() const { return total_specific_; }
  const std::vector<Container*>& containers() const { return containers_; }
  size_t reserve_count() const { return reserve_.count(); }
  size_t laundry_count() const { return laundry_.count(); }
  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }

  // Frames owned by the manager itself (reserve + laundry); for the conservation invariant.
  size_t manager_owned() const { return reserve_.count() + laundry_.count(); }

  // Frames stocked into the Flush reserve at boot. Flush exchanges swap frames one-for-one,
  // so reserve + laundry must equal this at every decision boundary (audited invariant).
  size_t stocked_reserve() const { return stocked_reserve_; }

  // Head of the global allocation-time-ordered frame list (FAFR forced-reclamation order);
  // walk with VmPage::alloc_next. Exposed for the invariant auditor.
  const mach::VmPage* alloc_head() const { return alloc_head_; }

 private:
  // Real-threads mode: fire any due disk completions (laundry returns) before a decision.
  // Called before mu_ is taken — the completion callbacks acquire it themselves.
  void PollCompletions();
  // Makes >= n frames available in the daemon's free pool (balance, then normal reclamation,
  // then forced reclamation). Returns false if even that fails.
  bool EnsureManagerFrames(size_t n, Container* requester);
  // Keeps total_specific_ + n within partition_burst, reclaiming from other applications.
  bool CheckBurst(Container* requester, size_t n);
  // Moves `n` frames from the daemon onto `dest`, owned and accounted to `container`.
  // False only when a concurrent allocator won the race after EnsureManagerFrames.
  [[nodiscard]] bool GrantFrames(Container* container, size_t n, mach::PageQueue* dest);

  size_t NormalReclaim(size_t needed, Container* exclude);
  size_t ForcedReclaim(size_t needed, Container* exclude);

  // Adaptive-burst adjustment, run before each allocation decision when enabled.
  void MaybeAdaptBurst();

  void TrackAlloc(mach::VmPage* page);
  void UntrackAlloc(mach::VmPage* page);

  void NotifyDecision(const char* decision) {
    if (decision_hook_) {
      decision_hook_(decision);
    }
  }

  mach::Kernel* kernel_;
  FrameManagerConfig config_;
  // One lock for every manager decision: burst accounting, the FAFR list, reserve/laundry,
  // and the container list all mutate together within a decision, so finer locks would buy
  // contention-prone consistency repair, not parallelism (decisions are rare next to faults).
  mutable sim::OrderedMutex mu_{sim::LockRank::kManager};
  size_t partition_burst_;
  size_t total_specific_ = 0;

  // Registration order == FAFR victim order ("the newly created container is added to the end
  // of the list that links all containers").
  std::vector<Container*> containers_;

  mach::PageQueue reserve_;
  mach::PageQueue laundry_;

  // Global allocation-time-ordered frame list for forced reclamation.
  mach::VmPage* alloc_head_ = nullptr;
  mach::VmPage* alloc_tail_ = nullptr;

  ReclaimRunner reclaim_runner_;
  DecisionHook decision_hook_;
  size_t reclaim_cursor_ = 0;
  size_t stocked_reserve_ = 0;
  uint64_t next_alloc_seq_ = 1;

  // Adaptive-burst state.
  size_t boot_free_frames_ = 0;
  int64_t last_daemon_evictions_ = 0;
  int64_t last_requests_rejected_ = 0;
  sim::Nanos last_adapt_ns_ = -1;

  sim::CounterSet counters_;
  obs::ProbeSet probes_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_FRAME_MANAGER_H_
