// The HiPEC engine: the two system calls that activate the mechanism (§4.3,
// vm_allocate_hipec() and vm_map_hipec()), the fault-path hook that runs the policy executor,
// and the glue between the manager, the executor and the security checker.
//
// Registration (either syscall) performs the steps of §4.3: allocate and initialize the
// container (from a zone), statically validate the HiPEC commands in the policy buffer, wire
// the command buffer read-only into the application's address space, and obtain the minFrame
// private frames from the global frame manager.
#ifndef HIPEC_HIPEC_ENGINE_H_
#define HIPEC_HIPEC_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "hipec/checker.h"
#include "hipec/container.h"
#include "hipec/executor.h"
#include "hipec/frame_manager.h"
#include "hipec/program.h"
#include "hipec/validator.h"
#include "mach/kernel.h"
#include "mach/zone.h"

namespace hipec::core {

// Per-registration options. The integer fields preset standard-layout operands so policies
// like Table 2's can reference their targets.
struct HipecOptions {
  // minFrame: the private frames guaranteed to the application (decided by privileged users).
  size_t min_frames = 0;
  // TimeOut period for the security checker; 0 uses the cost-model default.
  sim::Nanos timeout_ns = 0;
  // Standard-layout operand presets.
  int64_t free_target = 0;
  int64_t inactive_target = 0;
  int64_t reserved_target = 0;
  int64_t request_size = 16;
  // QoS weight for front-ends that multiplex many applications over one engine (the hipecd
  // drain scheduler): a weight-w client's ring gets w× the per-pass drain budget of a
  // weight-1 client. Ignored by the in-process fault path.
  uint32_t qos_weight = 1;
  // Extra user-defined operands, placed from std_ops::kUserBase: first the queues, then
  // integer scratch variables (initialized to 0), then page variables.
  size_t user_queue_count = 0;
  size_t user_int_count = 0;
  size_t user_page_count = 0;
  // Initial values for user integer operands (the translator emits these for `const`
  // declarations and pooled large literals). Applied after the layout is defined.
  struct IntInit {
    uint8_t index;
    int64_t value;
    bool read_only;
  };
  std::vector<IntInit> user_int_inits;
  // --- extensions (§6 future work) ------------------------------------------------------------
  // Allow other specific applications to Migrate frames into this container.
  bool accepts_migration = false;
  // After every policy event, verify that every allocated frame is still reachable through
  // the container's queues or page variables; a mismatch (a leaked frame) terminates the
  // application. Part of the stronger security checking §6 calls for.
  bool strict_accounting = false;
};

struct HipecRegion {
  bool ok = false;
  std::string error;
  uint64_t addr = 0;
  Container* container = nullptr;
};

// Configures the standard operand layout (operand.h) plus the user-defined operands requested
// in `options`. Called by the engine at registration; exposed for tests and tools that drive
// the executor directly.
void SetupStandardOperands(Container* container, const HipecOptions& options);

class HipecEngine final : public mach::FaultInterceptor {
 public:
  explicit HipecEngine(mach::Kernel* kernel, FrameManagerConfig manager_config = {});
  ~HipecEngine() override;
  HipecEngine(const HipecEngine&) = delete;
  HipecEngine& operator=(const HipecEngine&) = delete;

  // vm_allocate_hipec(): a fresh anonymous region of `size` bytes under specific control.
  HipecRegion VmAllocateHipec(mach::Task* task, uint64_t size, const PolicyProgram& program,
                              const HipecOptions& options);

  // vm_map_hipec(): maps an existing file object under specific control.
  HipecRegion VmMapHipec(mach::Task* task, mach::VmObject* object, const PolicyProgram& program,
                         const HipecOptions& options);

  // mach::FaultInterceptor:
  bool HandleFault(const mach::FaultContext& ctx) override;
  void OnRegionTeardown(mach::Task* task, mach::VmMapEntry* entry) override;
  void OnMemoryPressure() override;

  GlobalFrameManager& manager() { return manager_; }
  PolicyExecutor& executor() { return executor_; }
  SecurityChecker& checker() { return checker_; }
  sim::CounterSet& counters() { return counters_; }
  mach::Kernel& kernel() { return *kernel_; }

  // Arms the engine's registration lock (rank kEngine — taken before any task lock, since
  // registration wires buffers and admits containers) plus every owned component. Called by
  // the constructor when the kernel runs real threads.
  void EnableConcurrent();

 private:
  HipecRegion Register(mach::Task* task, mach::VmObject* object, const PolicyProgram& program,
                       const HipecOptions& options);
  // ReclaimRunner for the manager: runs the victim's ReclaimFrame event.
  size_t RunReclaim(Container* container, size_t ask);
  // Strict-accounting pass: true iff every allocated frame is reachable.
  bool AccountingConsistent(Container* container) const;
  // Runs the strict pass if enabled; terminates the offender and returns false on a leak.
  bool EnforceAccounting(Container* container);

  mach::Kernel* kernel_;
  // Serializes registrations (container id assignment, static validation, admission). Rank
  // kEngine: the lowest rank, acquired before the task/manager locks registration takes.
  // Teardown does NOT take it (it arrives holding a task lock); teardown touches only the
  // zone, which has its own leaf lock.
  sim::OrderedMutex mu_{sim::LockRank::kEngine};
  GlobalFrameManager manager_;
  PolicyExecutor executor_;
  SecurityChecker checker_;
  mach::Zone<Container> container_zone_{"hipec_containers"};
  std::atomic<uint64_t> next_container_id_{1};
  sim::CounterSet counters_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_ENGINE_H_
