#include "hipec/instruction.h"

#include <array>
#include <sstream>

namespace hipec::core {
namespace {

constexpr std::array<const char*, kOpcodeCount> kNames = {
    "Return", "Arith",   "Comp",    "Logic", "EmptyQ", "InQ",  "Jump",
    "DeQueue", "EnQueue", "Request", "Release", "Flush", "Set",  "Ref",
    "Mod",     "Find",    "Activate", "FIFO",  "LRU",    "MRU",
    "Migrate", "Unlink",  "WeightedSelect", "SatDotProduct", "PageWord",
};

// kOpcodeCount is derived from the enum; a new opcode that is not given a name here would
// otherwise leave a silent nullptr hole in the table.
constexpr bool AllOpcodesNamed() {
  for (const char* name : kNames) {
    if (name == nullptr) {
      return false;
    }
  }
  return true;
}
static_assert(AllOpcodesNamed(), "every Opcode needs an entry in kNames");

}  // namespace

bool IsValidOpcode(uint8_t code) { return code < kOpcodeCount; }

std::optional<std::string> OpcodeName(Opcode op) {
  auto code = static_cast<uint8_t>(op);
  if (!IsValidOpcode(code)) {
    return std::nullopt;
  }
  return std::string(kNames[code]);
}

std::optional<Opcode> OpcodeFromName(const std::string& name) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    if (name == kNames[i]) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

bool SetsCondition(Opcode op) {
  switch (op) {
    case Opcode::kComp:
    case Opcode::kLogic:
    case Opcode::kEmptyQ:
    case Opcode::kInQ:
    case Opcode::kRef:
    case Opcode::kMod:
    case Opcode::kRequest:
    case Opcode::kRelease:
    case Opcode::kFlush:
    case Opcode::kFind:
    case Opcode::kMigrate:
      return true;
    default:
      return false;
  }
}

std::string Instruction::ToString() const {
  std::ostringstream os;
  auto name = OpcodeName(op);
  if (!name.has_value()) {
    os << "Invalid(0x" << std::hex << static_cast<int>(op) << ")";
    return os.str();
  }
  os << *name;
  auto hex2 = [&os](uint8_t v) {
    os << std::hex << std::uppercase;
    if (v < 16) {
      os << "0";
    }
    os << static_cast<int>(v) << std::dec << std::nouppercase;
  };
  switch (op) {
    case Opcode::kReturn:
    case Opcode::kEmptyQ:
    case Opcode::kRelease:
    case Opcode::kFlush:
    case Opcode::kRef:
    case Opcode::kMod:
    case Opcode::kActivate:
    case Opcode::kUnlink:
      os << " ";
      hex2(op1);
      break;
    case Opcode::kJump:
      os << " -> " << static_cast<int>(op3);
      break;
    default:
      os << " ";
      hex2(op1);
      os << ",";
      hex2(op2);
      if (op3 != 0) {
        os << "," << static_cast<int>(op3);
      }
      break;
  }
  return os.str();
}

}  // namespace hipec::core
