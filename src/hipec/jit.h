// The install-time template JIT (ROADMAP item 5).
//
// At InstallPolicy time — after the decode-and-verify pass has produced the DecodedProgram IR
// and the fusion pass has folded superinstructions — Compile() translates each event's
// instruction stream into contiguous native code: one hand-written machine-code fragment per
// DispatchKind, stitched together with resolved jump targets. Hot state is pinned in
// registers for the whole event — the operand-slot base, the condition-flag and kill-flag
// addresses, and (as live VALUES, spilled around bridge calls) the command budget and the
// virtual time itself, so the per-command prologue touches no memory beyond two compares.
// Cheap kinds (arith, comp, logic, jump, the fused pairs, page-bit ops) and the intrusive
// queue mutations (EnQueue/DeQueue, the paper's hottest commands) are fully inlined; the
// heavy kinds (Request, Flush, the replacement-policy scans) call into the existing
// frame-manager helpers through small C++ bridge functions.
//
// Semantics contract: compiled code is observably identical to RunEventIr — same traces (one
// ExecTrace per original command, same CC/opcode/condition values), same counters, same error
// strings, same virtual-time charging order (the per-command decode charge inlines
// VirtualClock::Advance's fast path against a cached deadline horizon and bridges out on the
// slow path), same kill/budget semantics. The dual-path tests and the differential fuzzer
// assert this byte-for-byte against the interpreter, which stays as the reference oracle.
//
// Exception discipline: no C++ exception ever unwinds through a JIT frame (the generated code
// has no unwind tables). Bridges catch everything into JitFrame::pending and return a status;
// the generated code exits with a JitStatus and PolicyExecutor::RunEventJit rethrows — so a
// PolicyError raised three calls deep inside the frame manager surfaces exactly as it does
// under the interpreter.
//
// Executable memory is W^X: the buffer is mmap'd read-write, filled, then flipped to
// read-execute; it is never writable and executable at the same time. One buffer per
// compiled program, cached on the Container beside the IR and unmapped with it.
//
// Fallback matrix: x86_64 hosts compile every kind; on every other architecture Available()
// is false and Compile() returns null, so DispatchMode::kJit degrades per event to
// RunEventIr (counted in executor.jit_fallbacks). The same per-event fallback covers kinds
// masked out via SetUnsupportedKindForTesting, which is how the fallback path is exercised
// by tests on x86_64.
#ifndef HIPEC_HIPEC_JIT_H_
#define HIPEC_HIPEC_JIT_H_

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "hipec/decoded.h"

namespace hipec::sim {
class VirtualClock;
}  // namespace hipec::sim

namespace hipec::mach {
struct KernelContext;
}  // namespace hipec::mach

namespace hipec::core {

class PolicyExecutor;
class Container;
class GlobalFrameManager;
struct ExecTrace;
struct OperandEntry;
class OperandArray;

namespace jit {

// Why compiled code stopped. The executor's RunEventJit wrapper converts these back into the
// interpreter's control flow (normal return, PolicyError, TimeoutSignal).
enum class JitStatus : uint64_t {
  kReturn = 0,        // Return executed; JitFrame::return_operand holds the operand index
  kKill = 1,          // the security checker's kill flag was observed at a command prologue
  kBudget = 2,        // the host command budget hit zero (wrapper sets kill_requested)
  kException = 3,     // a bridge captured a C++ exception into JitFrame::pending
  kErrorStatic = 4,   // inline PolicyError; JitFrame::error_msg is a static string
  kErrorOperand = 5,  // inline PolicyError in "operand 0x%x: %s" form (error_operand + msg)
  kErrorTrap = 6,     // a kTrapError slot fired; JitFrame::trap_index names the message
};

// The execution frame handed to compiled code (pinned in a register for the whole event).
// Field order is load-bearing only in that the emitter computes every displacement at run
// time from a probe object — nothing here requires standard layout.
struct JitFrame {
  // --- hot state, loaded into registers by the event prologue ---
  OperandEntry* slots = nullptr;
  int64_t* budget = nullptr;
  bool* condition = nullptr;           // &PolicyExecutor::condition_ (this thread's copy)
  const void* kill = nullptr;          // &Container::kill_requested (a 1-byte atomic flag)
  int64_t* now_addr = nullptr;         // &VirtualClock::now_, or null in real-threads mode
  // Earliest pending clock deadline (INT64_MAX if none, INT64_MIN while the clock is
  // dispatching, so every charge takes the bridge and hits the same misuse CHECK the
  // interpreter would). Bridges refresh it before returning — any of them may schedule.
  int64_t horizon = 0;
  std::vector<ExecTrace>* trace = nullptr;  // null when tracing is off

  // --- bridge context --- (the bridges derive the frame manager, kernel context and clock
  // from `executor`, keeping the per-event frame setup to the fields compiled code reads)
  PolicyExecutor* executor = nullptr;
  Container* container = nullptr;
  int event = 0;
  int depth = 0;

  // --- results ---
  uint64_t return_operand = 0;
  const char* error_msg = nullptr;
  uint32_t error_operand = 0;
  uint32_t trap_index = 0;
  std::exception_ptr pending;

  // Recomputes `horizon` from the clock. Called by every bridge that can advance time or
  // schedule events, so the inlined charge fast path stays valid.
  void RefreshHorizon();
};

// Entry point of one compiled event. Returns a JitStatus.
using JitEntry = uint64_t (*)(JitFrame*);

struct JitEventCode {
  JitEntry entry = nullptr;  // null: event absent, ineligible, or masked out
  uint32_t code_offset = 0;  // into JitProgram::buffer()
  uint32_t code_size = 0;
};

// One emitted fragment, for the --emit=jit dump: which slot of which event produced the
// bytes at [offset, offset+size). Pseudo-slots: cc 0xfffe is the event prologue, cc 0xffff
// the shared exit stubs.
struct JitFragment {
  int event = 0;
  uint16_t cc = 0;
  DispatchKind kind = DispatchKind::kTrapOutside;
  uint32_t offset = 0;
  uint32_t size = 0;
};

// A compiled policy program: one W^X native-code buffer holding every compiled event, cached
// on the Container beside the DecodedProgram. Immutable after construction (the buffer is
// read-execute); safe to run from multiple threads.
class JitProgram {
 public:
  JitProgram(void* buffer, size_t size, std::vector<JitEventCode> events,
             std::vector<JitFragment> fragments)
      : buffer_(buffer), size_(size), events_(std::move(events)),
        fragments_(std::move(fragments)) {}
  JitProgram(const JitProgram&) = delete;
  JitProgram& operator=(const JitProgram&) = delete;
  ~JitProgram();  // munmaps the code buffer

  // The compiled code for `event`, or null if that event must run on the interpreter.
  const JitEventCode* Code(int event) const {
    if (event < 0 || event >= static_cast<int>(events_.size()) ||
        events_[static_cast<size_t>(event)].entry == nullptr) {
      return nullptr;
    }
    return &events_[static_cast<size_t>(event)];
  }

  const uint8_t* buffer() const { return static_cast<const uint8_t*>(buffer_); }
  size_t buffer_size() const { return size_; }
  const std::vector<JitFragment>& fragments() const { return fragments_; }

 private:
  void* buffer_;
  size_t size_;
  std::vector<JitEventCode> events_;
  std::vector<JitFragment> fragments_;
};

struct CompileOptions {
  // Deterministic mode inlines the virtual-clock charge fast path; real-threads mode emits
  // no charge code at all (KernelContext::Charge is a no-op there).
  bool deterministic = true;
  // Per-command decode cost and the replacement-policy surcharge, baked into the emitted
  // charge sequences (sim::CostModel::command_decode_ns / complex_command_ns).
  int64_t decode_ns = 0;
  int64_t complex_ns = 0;
};

// True when this host has a template emitter (x86_64). Everything else falls back to the
// interpreter — shipping untested machine code for unexercisable architectures is worse than
// an honest fallback, and the fallback path itself is test-covered.
bool Available();

// True when `kind` has a native template. Currently every kind does on a supported host;
// the decoder mirrors this into DecodedEvent::jit_eligible so install-time tooling can
// report eligibility without linking the emitter.
constexpr bool KindSupported(DispatchKind kind) {
  return static_cast<uint8_t>(kind) < kDispatchKindCount;
}

// Test hook: pretend `kind` has no template, forcing events that contain it onto the
// interpreter fallback. Process-global; tests must reset what they set.
void SetUnsupportedKindForTesting(DispatchKind kind, bool unsupported);

// Compiles every present, eligible event of `program` against the operand layout `operands`
// (the same layout the decoder classified against — operand types are baked into the
// fragments). Returns null when the host has no emitter. Events containing masked-out kinds
// get a null entry and fall back at run time.
std::unique_ptr<JitProgram> Compile(const DecodedProgram& program,
                                    const OperandArray& operands,
                                    const CompileOptions& options);

// Human-readable dump for hipecc --emit=jit: per event, the fragment map (slot, kind, code
// offset) with a hexdump of each fragment's bytes.
std::string DumpJit(const JitProgram& program);

}  // namespace jit
}  // namespace hipec::core

#endif  // HIPEC_HIPEC_JIT_H_
