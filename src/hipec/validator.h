// Static validation of policy programs — the security checker's syntax/consistency pass
// (§4.3.3): "the security checker only checks for illegal syntax of commands, such as the
// wrong number or illegal type of operands". Run when a specific application invokes
// vm_map_hipec()/vm_allocate_hipec(), before any command is ever executed.
//
// Checked per event stream:
//   * the magic number in word 0;
//   * every operator code is one of the 20 defined commands;
//   * operand indices refer to operand-array entries of the type the command requires
//     (integer / page / queue), and written operands are writable;
//   * flag bytes are within range for the sub-operation they select;
//   * Jump targets land on a command of the same event (CC in [1, len]);
//   * Activate targets name an event that exists in the program;
//   * every non-empty event contains at least one Return (a stream that can only fall off
//     the end is rejected).
#ifndef HIPEC_HIPEC_VALIDATOR_H_
#define HIPEC_HIPEC_VALIDATOR_H_

#include <string>
#include <vector>

#include "hipec/operand.h"
#include "hipec/program.h"

namespace hipec::core {

struct ValidationError {
  int event;
  int cc;  // command counter within the event; 0 for stream-level errors
  std::string message;

  std::string ToString() const;
};

// Validates `program` against the operand-array layout it will run with. Empty result means
// the program is accepted.
std::vector<ValidationError> ValidatePolicy(const PolicyProgram& program,
                                            const OperandArray& operands);

// Convenience: formats all errors, one per line.
std::string FormatErrors(const std::vector<ValidationError>& errors);

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_VALIDATOR_H_
