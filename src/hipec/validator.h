// Static validation of policy programs — the security checker's syntax/consistency pass
// (§4.3.3): "the security checker only checks for illegal syntax of commands, such as the
// wrong number or illegal type of operands". Run when a specific application invokes
// vm_map_hipec()/vm_allocate_hipec(), before any command is ever executed.
//
// Since the decode-once refactor this pass *is* the decoder: one walk over the raw command
// buffer classifies every word into the DecodedProgram IR (decoded.h) and collects every
// diagnostic. Accepting a policy therefore also yields the pre-validated instruction stream
// the executor will run — the program is never decoded again.
//
// Checked per event stream:
//   * the magic number in word 0;
//   * every operator code is one of the defined commands;
//   * operand indices refer to operand-array entries of the type the command requires
//     (integer / page / queue), and written operands are writable;
//   * flag bytes are within range for the sub-operation they select;
//   * Jump targets land on a command of the same event (CC in [1, len]);
//   * Activate targets name an event that exists in the program;
//   * every non-empty event contains at least one Return (a stream that can only fall off
//     the end is rejected).
#ifndef HIPEC_HIPEC_VALIDATOR_H_
#define HIPEC_HIPEC_VALIDATOR_H_

#include <string>
#include <vector>

#include "hipec/decoded.h"
#include "hipec/operand.h"
#include "hipec/program.h"

namespace hipec::core {

struct ValidationError {
  int event;
  int cc;  // command counter within the event; 0 for stream-level errors
  std::string message;

  std::string ToString() const;
};

// The combined decode-and-verify result. `errors` empty means the policy is accepted and
// `program` is the IR to install on the container.
struct DecodeResult {
  DecodedProgram program;
  std::vector<ValidationError> errors;
  // Events whose (post-fusion) stream contains a kind with no native JIT template
  // (DecodedEvent::jit_eligible false despite being present). Such events are legal — they
  // run on the interpreter — but install-time tooling reports them so a policy author knows
  // which events won't get the compiled fast path.
  std::vector<int> jit_ineligible_events;
};

// Decodes and validates `program` against the operand-array layout it will run with — the
// single pass the engine's install path runs.
DecodeResult DecodeAndValidate(const PolicyProgram& program, const OperandArray& operands);

// Validation-only view of DecodeAndValidate (discards the IR). Empty result means the
// program is accepted.
std::vector<ValidationError> ValidatePolicy(const PolicyProgram& program,
                                            const OperandArray& operands);

// Convenience: formats all errors, one per line.
std::string FormatErrors(const std::vector<ValidationError>& errors);

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_VALIDATOR_H_
