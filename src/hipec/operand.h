// The operand array (§4.2): up to 256 typed entries per container. Each entry is a pointer to
// a variable — "as simple as an unsigned integer, or as complex as the virtual memory page
// structure or page queue list". Commands reference entries by 8-bit index.
//
// Entry kinds:
//   * kInt        — a mutable (or read-only) 64-bit integer (targets, counters, scratch).
//   * kPage       — a vm_page pointer variable.
//   * kQueue      — a page queue (private free/active/inactive or user-defined).
//   * kQueueCount — a read-only integer *view* of a queue's length (e.g. _free_count).
//
// Policy programs run in kernel mode, so type confusion here is a kernel-integrity hazard;
// typed accessors raise PolicyError, which the executor turns into application termination —
// the security model of §4.3.3.
//
// This file also defines the *standard layout*: the canonical index assignments that the
// engine configures for every container and the translator/policy builders rely on. (The
// paper's Table 2 listing uses ad-hoc, internally inconsistent indices; see instruction.h.)
#ifndef HIPEC_HIPEC_OPERAND_H_
#define HIPEC_HIPEC_OPERAND_H_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "mach/page_queue.h"
#include "mach/vm_page.h"

namespace hipec::core {

// A runtime fault in a policy program (bad operand type, dequeue from empty queue, division
// by zero, ...). Caught by the executor and converted into task termination.
class PolicyError : public std::runtime_error {
 public:
  explicit PolicyError(const std::string& what) : std::runtime_error(what) {}
};

enum class OperandType : uint8_t {
  kUnset = 0,
  kInt,
  kPage,
  kQueue,
  kQueueCount,
};

struct OperandEntry {
  OperandType type = OperandType::kUnset;
  bool read_only = false;
  int64_t int_value = 0;
  mach::VmPage* page = nullptr;
  mach::PageQueue* queue = nullptr;
};

class OperandArray {
 public:
  static constexpr size_t kEntries = 256;

  // --- Definition (registration time) --------------------------------------------------------
  void DefineInt(uint8_t index, int64_t value, bool read_only = false);
  void DefinePage(uint8_t index);
  void DefineQueue(uint8_t index, mach::PageQueue* queue);
  void DefineQueueCount(uint8_t index, mach::PageQueue* queue);

  // --- Typed access (run time; throws PolicyError on misuse) ---------------------------------
  int64_t ReadInt(uint8_t index) const;           // kInt or kQueueCount
  void WriteInt(uint8_t index, int64_t value);    // kInt, not read-only
  mach::VmPage* ReadPage(uint8_t index) const;    // kPage, non-null
  mach::VmPage* ReadPageOrNull(uint8_t index) const;
  void WritePage(uint8_t index, mach::VmPage* page);
  mach::PageQueue* ReadQueue(uint8_t index) const;

  const OperandEntry& entry(uint8_t index) const { return entries_[index]; }
  OperandType TypeOf(uint8_t index) const { return entries_[index].type; }

  // Unchecked slot access for the executor's decoded-IR fast path: the decoder has already
  // proven each command's operand kinds against this layout, so the interpreter may touch the
  // entries directly without re-running the typed accessors above.
  OperandEntry* slots() { return entries_.data(); }

 private:
  [[noreturn]] static void Fail(uint8_t index, const char* message);

  std::array<OperandEntry, kEntries> entries_{};
};

// Standard operand layout. The engine defines these for every container; user-defined
// operands (extra queues, variables) start at kUserBase.
namespace std_ops {
inline constexpr uint8_t kScratch0 = 0x00;       // int scratch
inline constexpr uint8_t kFreeQueue = 0x01;      // container private free list
inline constexpr uint8_t kFreeCount = 0x02;      // read-only view: _free_count
inline constexpr uint8_t kActiveQueue = 0x03;    // private active queue
inline constexpr uint8_t kActiveCount = 0x04;    // read-only view
inline constexpr uint8_t kInactiveQueue = 0x05;  // private inactive queue
inline constexpr uint8_t kInactiveCount = 0x06;  // read-only view
inline constexpr uint8_t kFreeTarget = 0x07;     // int: free_target
inline constexpr uint8_t kInactiveTarget = 0x08;  // int: inactive_target
inline constexpr uint8_t kReservedTarget = 0x09;  // int: reserved_target
inline constexpr uint8_t kRequestSize = 0x0A;     // int: frames per Request
inline constexpr uint8_t kPage = 0x0B;            // the page variable of Table 2
inline constexpr uint8_t kFaultAddr = 0x0C;       // int: faulting address (set by kernel)
inline constexpr uint8_t kReclaimCount = 0x0D;    // int: frames asked by ReclaimFrame event
inline constexpr uint8_t kResult = 0x0E;          // int: status/return scratch
inline constexpr uint8_t kScratch1 = 0x0F;        // int scratch
inline constexpr uint8_t kUserBase = 0x10;
}  // namespace std_ops

// HiPEC-defined event numbers (§4.2). User events follow from kFirstUserEvent.
inline constexpr int kEventPageFault = 0;
inline constexpr int kEventReclaimFrame = 1;
inline constexpr int kFirstUserEvent = 2;

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_OPERAND_H_
