#include "hipec/executor.h"

#include <algorithm>
#include <cstdio>

#include "sim/check.h"

namespace hipec::core {
namespace {

// Internal signal: the security checker asked for this execution to die.
struct TimeoutSignal {};

// The dispatch loop (dispatch_loop.inc) has a case and a jump-table entry per DispatchKind;
// this fires when someone grows the IR without teaching the interpreter the new kind.
static_assert(kDispatchKindCount == 56,
              "new DispatchKind: add a handler (and jump-table entry) to dispatch_loop.inc "
              "and update this tripwire");

// Interned counter ids: the per-event bookkeeping in ExecuteEvent and the replacement-policy
// commands run on every fault, so they must not pay a string-keyed lookup.
const sim::CounterId kCtrPolicyErrors = sim::InternCounter("executor.policy_errors");
const sim::CounterId kCtrTimeouts = sim::InternCounter("executor.timeouts");
const sim::CounterId kCtrEvents = sim::InternCounter("executor.events");
const sim::CounterId kCtrCommands = sim::InternCounter("executor.commands");
const sim::CounterId kCtrPolicyCommands = sim::InternCounter("executor.policy_commands");
// JIT-path bookkeeping: events that entered RunEventJit, and the subset that fell back to
// the interpreter (no compiled code: unsupported host, masked kind, compile failure).
const sim::CounterId kCtrJitEvents = sim::InternCounter("executor.jit_events");
const sim::CounterId kCtrJitFallbacks = sim::InternCounter("executor.jit_fallbacks");

// Probe ids: histograms of per-event virtual latency and command counts. Recording is gated
// behind obs::ProbesEnabled() so the fault path pays one predicted branch when observability
// is off.
const obs::ProbeId kPrbEventNs = obs::InternProbe("executor.event_ns");
const obs::ProbeId kPrbEventCommands = obs::InternProbe("executor.event_commands");

// Integer load from a decode-classified slot (kInt or kQueueCount — the only two kinds the
// decoder accepts where an integer is read).
inline int64_t LoadInt(const OperandEntry& e) {
  return e.type == OperandType::kQueueCount ? static_cast<int64_t>(e.queue->count())
                                            : e.int_value;
}

// Same failure text as OperandArray::Fail, for the value checks that remain at run time.
// snprintf into a stack buffer: raising a PolicyError must not drag stream machinery into
// the interpreter's translation unit or allocate before the throw.
[[noreturn]] void FailOperand(uint8_t index, const char* message) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "operand 0x%x: %s", index, message);
  throw PolicyError(buf);
}

// The decoder proved the slot is a page variable; emptiness is a run-time property.
inline mach::VmPage* RequirePage(uint8_t index, const OperandEntry& e) {
  if (e.page == nullptr) [[unlikely]] {
    FailOperand(index, "page variable is empty");
  }
  return e.page;
}

}  // namespace

// Saturating arithmetic, written against unsigned wraparound (well-defined) plus explicit
// overflow detection so it compiles cleanly under UBSan on every supported compiler.
int64_t SatAdd64(int64_t a, int64_t b) {
  uint64_t ua = static_cast<uint64_t>(a);
  uint64_t ub = static_cast<uint64_t>(b);
  uint64_t sum = ua + ub;
  // Overflow iff the operands share a sign the result does not.
  if (((ua ^ sum) & (ub ^ sum)) >> 63 != 0) {
    return a < 0 ? INT64_MIN : INT64_MAX;
  }
  return static_cast<int64_t>(sum);
}

int64_t SatMul64(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  // The two cases where the post-hoc division check below would itself overflow.
  if ((a == -1 && b == INT64_MIN) || (b == -1 && a == INT64_MIN)) {
    return INT64_MAX;
  }
  uint64_t up = static_cast<uint64_t>(a) * static_cast<uint64_t>(b);
  int64_t p = static_cast<int64_t>(up);
  if (p / a != b) {
    return ((a < 0) != (b < 0)) ? INT64_MIN : INT64_MAX;
  }
  return p;
}

int64_t SatDotSlots(const OperandEntry* slots, uint8_t base, int n) {
  int64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    int64_t weight = LoadInt(slots[base + i]);
    int64_t feature = LoadInt(slots[base + n + i]);
    acc = SatAdd64(acc, SatMul64(weight, feature));
  }
  return acc;
}

thread_local bool PolicyExecutor::condition_ = false;

PolicyExecutor::PolicyExecutor(mach::Kernel* kernel, GlobalFrameManager* manager)
    : kernel_(kernel), manager_(manager) {
  // No jit::Available() gate here: on hosts without an emitter Compile() returns null and
  // every event takes the (counted, test-covered) per-event fallback to the interpreter.
  if (kernel_->params().jit_mode) {
    mode_ = DispatchMode::kJit;
  }
  // In real-threads mode the security checker is a wall-clock thread and must win the race
  // against a runaway policy; at the JIT's ~1-2 ns/command the deterministic-mode default of
  // 50M commands would fire around the checker's 50 ms fuse and steal its kill. Seconds of
  // host CPU on any engine, still a real backstop.
  if (kernel_->concurrent()) {
    max_commands_ = 2'000'000'000;
  }
}

void PolicyExecutor::EnableConcurrent() {
  counters_.EnableConcurrent();
  probes_.EnableConcurrent();
}

ExecResult PolicyExecutor::ExecuteEvent(Container* container, int event) {
  ExecResult result;
  // Dispatch: container lookup, CC reset, timestamp write (§4.3.2).
  kernel_->ctx().Charge(kernel_->costs().policy_invoke_ns);
  const sim::Nanos start_ns = kernel_->ctx().now();
  // Relaxed stores: these fields are watchdog state the security checker polls from another
  // thread (real-threads mode) or reads in-thread (deterministic mode). The checker's
  // runaway detection is a heuristic over a racing snapshot by design, so it needs the
  // values to arrive, not an ordering — and the default seq_cst stores cost a full fence
  // each on x86, which at five stores per event was the single largest slice of the
  // per-event dispatch overhead.
  container->exec_start_ns.store(start_ns, std::memory_order_relaxed);
  container->executing_event.store(event, std::memory_order_relaxed);
  container->kill_requested.store(false, std::memory_order_relaxed);

  // Nested executions (a Request triggering another container's ReclaimFrame) share this
  // executor; keep their condition flags independent.
  bool saved_condition = condition_;
  condition_ = false;

  int64_t budget = max_commands_;
  try {
    switch (mode_) {
      case DispatchMode::kDecodedIr:
        result.return_operand = RunEventIr(container, event, /*depth=*/0, &budget);
        break;
      case DispatchMode::kJit:
        result.return_operand = RunEventJit(container, event, /*depth=*/0, &budget);
        break;
      case DispatchMode::kReferenceSwitch:
        result.return_operand = RunEventSwitch(container, event, /*depth=*/0, &budget);
        break;
    }
  } catch (const PolicyError& e) {
    result.outcome = ExecOutcome::kError;
    result.error = e.what();
    counters_.Add(kCtrPolicyErrors);
  } catch (const TimeoutSignal&) {
    result.outcome = ExecOutcome::kTimeout;
    result.error = "policy execution timed out";
    counters_.Add(kCtrTimeouts);
  }

  condition_ = saved_condition;
  result.commands_executed = max_commands_ - budget;
  container->commands_executed += result.commands_executed;
  if (obs::ProbesEnabled()) {
    probes_.Record(kPrbEventNs, kernel_->ctx().now() - start_ns);
    probes_.Record(kPrbEventCommands, result.commands_executed);
  }
  container->exec_start_ns.store(-1, std::memory_order_relaxed);
  container->executing_event.store(-1, std::memory_order_relaxed);
  // The tracer is off unless a test/scenario enabled it; evaluating Record's arguments costs
  // a clock read, so gate the whole call rather than relying on its internal enabled check.
  sim::Tracer& tracer = kernel_->tracer();
  if (tracer.enabled()) [[unlikely]] {
    tracer.Record(kernel_->ctx().now(), sim::TraceCategory::kPolicy,
                  static_cast<uint16_t>(result.outcome), container->id(),
                  static_cast<uint64_t>(event));
  }
  counters_.Add(kCtrEvents);
  counters_.Add(kCtrCommands, result.commands_executed);
  return result;
}

// ----------------------------------------------------------------------------------------
// Production path: table-driven dispatch over the decode-once IR. Per command: one trap
// check, the checker/backstop guards, the decode-cost charge, and a single dense dispatch;
// operator decode, operand classification and branch bounds checks all happened at install
// time, and the fusion pass folded hot adjacent pairs into superinstructions.
//
// The loop body lives in dispatch_loop.inc and is instantiated twice: a portable dense
// switch, and (on GNU-compatible compilers) a computed-goto "threaded" loop whose per-handler
// indirect branches give the predictor one history slot per command kind.
// ----------------------------------------------------------------------------------------

#define HIPEC_DISPATCH_NAME RunEventIrSwitch
#define HIPEC_DISPATCH_THREADED 0
#include "hipec/dispatch_loop.inc"  // NOLINT(build/include)
#undef HIPEC_DISPATCH_NAME
#undef HIPEC_DISPATCH_THREADED

#if defined(__GNUC__)
#define HIPEC_DISPATCH_NAME RunEventIrThreaded
#define HIPEC_DISPATCH_THREADED 1
#include "hipec/dispatch_loop.inc"  // NOLINT(build/include)
#undef HIPEC_DISPATCH_NAME
#undef HIPEC_DISPATCH_THREADED
#endif

uint8_t PolicyExecutor::RunEventIr(Container* c, int event, int depth, int64_t* budget) {
#if defined(__GNUC__)
  if (threaded_dispatch_) {
    return RunEventIrThreaded(c, event, depth, budget);
  }
#endif
  return RunEventIrSwitch(c, event, depth, budget);
}

// ----------------------------------------------------------------------------------------
// JIT path: runs install-time-compiled native code (jit.h), falling back to the IR
// interpreter when the container has no compiled code for the event. The compiled code
// returns a JitStatus that this wrapper converts back into the interpreter's control flow —
// normal return, PolicyError, TimeoutSignal — so callers cannot tell the paths apart.
// ----------------------------------------------------------------------------------------

uint8_t PolicyExecutor::RunEventJit(Container* c, int event, int depth, int64_t* budget) {
  if (depth > 8) {
    throw PolicyError("Activate recursion too deep");
  }
  const jit::JitProgram* jp = c->jit_program();
  if (jp == nullptr && !c->jit_compile_attempted()) [[unlikely]] {
    // Direct harnesses (tests, benchmarks) that never went through the engine's install
    // path: compile lazily, mirroring the container's lazy decode. decoded_program() forces
    // that decode if it has not happened yet.
    const DecodedProgram& program = c->decoded_program();
    jit::CompileOptions opts;
    opts.deterministic = kernel_->ctx().vclock != nullptr;
    opts.decode_ns = kernel_->costs().command_decode_ns;
    opts.complex_ns = kernel_->costs().complex_command_ns;
    c->AdoptJitProgram(jit::Compile(program, c->operands(), opts));
    jp = c->jit_program();
  }
  counters_.Add(kCtrJitEvents);
  const jit::JitEventCode* code = jp != nullptr ? jp->Code(event) : nullptr;
  if (code == nullptr) {
    // No compiled code: event absent or ineligible, kind masked out, or no emitter on this
    // host. The interpreter re-runs the event-presence check, so an Activate of an undefined
    // event raises the identical PolicyError it always did.
    counters_.Add(kCtrJitFallbacks);
    return RunEventIr(c, event, depth, budget);
  }

  sim::VirtualClock* vclock = kernel_->ctx().vclock;
  jit::JitFrame frame;
  frame.slots = c->operands().slots();
  frame.budget = budget;
  frame.condition = &condition_;
  frame.kill = &c->kill_requested;
  frame.trace = trace_;
  frame.executor = this;
  frame.container = c;
  frame.event = event;
  frame.depth = depth;
  if (vclock != nullptr) {
    frame.now_addr = vclock->now_storage();
    frame.horizon = vclock->charge_horizon();
  }

  const uint64_t status = code->entry(&frame);
  switch (static_cast<jit::JitStatus>(status)) {
    case jit::JitStatus::kReturn:
      return static_cast<uint8_t>(frame.return_operand);
    case jit::JitStatus::kBudget:
      // The interpreter's budget guard sets the kill flag before throwing (dispatch_loop.inc
      // treats exhaustion exactly like a checker kill); match it.
      c->kill_requested = true;
      [[fallthrough]];
    case jit::JitStatus::kKill:
      throw TimeoutSignal{};
    case jit::JitStatus::kException:
      std::rethrow_exception(frame.pending);
    case jit::JitStatus::kErrorStatic:
      throw PolicyError(frame.error_msg);
    case jit::JitStatus::kErrorOperand: {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "operand 0x%x: %s", frame.error_operand,
                    frame.error_msg);
      throw PolicyError(buf);
    }
    case jit::JitStatus::kErrorTrap:
      throw PolicyError(c->decoded_program().event(event).traps[frame.trap_index]);
  }
  throw PolicyError("JIT returned an unknown status");
}

// ----------------------------------------------------------------------------------------
// Reference path: the pre-IR interpreter that re-decodes each raw word and re-classifies
// operands on every event. Kept only so the dual-path tests and the before/after benchmarks
// can compare it against the IR interpreter; scheduled for deletion after the transition.
// ----------------------------------------------------------------------------------------

uint8_t PolicyExecutor::RunEventSwitch(Container* c, int event, int depth, int64_t* budget) {
  if (depth > 8) {
    throw PolicyError("Activate recursion too deep");
  }
  if (!c->program().HasEvent(event)) {
    throw PolicyError("Activate of an undefined event");
  }
  const EventProgram& stream = c->program().event(event);
  const sim::CostModel& costs = kernel_->costs();

  size_t cc = 1;  // word 0 is the magic number
  for (;;) {
    if (cc >= stream.words.size() || cc == 0) {
      throw PolicyError("control fell outside the command stream");
    }
    if (c->kill_requested) {
      throw TimeoutSignal{};
    }
    if (--(*budget) < 0) {
      // Host backstop; semantically equivalent to the checker firing.
      c->kill_requested = true;
      throw TimeoutSignal{};
    }
    kernel_->ctx().Charge(costs.command_decode_ns);
    Instruction inst = Instruction::Decode(stream.words[cc]);

    const size_t executed_cc = cc;  // kJump overwrites cc; the trace reports the jump's own CC
    bool jumped = false;
    switch (inst.op) {
      case Opcode::kReturn:
        if (trace_ != nullptr) {
          trace_->push_back(ExecTrace{event, static_cast<uint16_t>(cc),
                                      static_cast<uint8_t>(inst.op), condition_});
        }
        return inst.op1;
      case Opcode::kJump:
        if (!condition_) {
          cc = inst.op3;
          jumped = true;
        }
        break;
      case Opcode::kActivate:
        RunEventSwitch(c, inst.op1, depth + 1, budget);
        break;
      case Opcode::kArith:
        DoArith(c, inst);
        break;
      case Opcode::kComp:
        DoComp(c, inst);
        break;
      case Opcode::kLogic:
        DoLogic(c, inst);
        break;
      case Opcode::kEmptyQ:
        condition_ = c->operands().ReadQueue(inst.op1)->empty();
        break;
      case Opcode::kInQ:
        condition_ = c->operands().ReadQueue(inst.op1)->Contains(
            c->operands().ReadPage(inst.op2));
        break;
      case Opcode::kDeQueue:
        DoDeQueue(c, inst);
        break;
      case Opcode::kEnQueue:
        DoEnQueue(c, inst);
        break;
      case Opcode::kRequest:
        DoRequest(c, inst);
        break;
      case Opcode::kRelease:
        DoRelease(c, inst);
        break;
      case Opcode::kFlush:
        DoFlush(c, inst);
        break;
      case Opcode::kSet:
        DoSet(c, inst);
        break;
      case Opcode::kRef:
        condition_ = c->operands().ReadPage(inst.op1)->reference;
        break;
      case Opcode::kMod:
        condition_ = c->operands().ReadPage(inst.op1)->modified;
        break;
      case Opcode::kFind:
        DoFind(c, inst);
        break;
      case Opcode::kFifo:
      case Opcode::kLru:
      case Opcode::kMru:
        kernel_->ctx().Charge(costs.complex_command_ns);
        DoReplacementPolicy(c, inst);
        break;
      case Opcode::kMigrate: {
        mach::VmPage* page = c->operands().ReadPage(inst.op1);
        if (page->owner != c) {
          throw PolicyError("Migrate of a frame the application does not own");
        }
        if (page->queue != nullptr) {
          throw PolicyError("Migrate of a page still on a queue (DeQueue it first)");
        }
        int64_t target = c->operands().ReadInt(inst.op2);
        condition_ = manager_->MigrateFrame(c, page, static_cast<uint64_t>(target));
        if (condition_) {
          c->operands().WritePage(inst.op1, nullptr);
        }
        break;
      }
      case Opcode::kUnlink: {
        mach::VmPage* page = c->operands().ReadPage(inst.op1);
        if (page->owner != c) {
          throw PolicyError("Unlink of a frame the application does not own");
        }
        if (page->queue == nullptr) {
          throw PolicyError("Unlink of a page that is not on a queue");
        }
        page->queue.load()->Remove(page);
        break;
      }
      case Opcode::kWeightedSelect:
        kernel_->ctx().Charge(costs.complex_command_ns);
        DoWeightedSelect(c, inst);
        break;
      case Opcode::kSatDotProduct:
        DoSatDotProduct(c, inst);
        break;
      case Opcode::kPageWord:
        DoPageWord(c, inst);
        break;
      default:
        throw PolicyError("invalid operator code reached the executor");
    }

    if (!SetsCondition(inst.op)) {
      // Non-test commands clear the condition flag (see instruction.h); test commands have
      // just set it in their handlers.
      condition_ = false;
    }
    if (trace_ != nullptr) {
      trace_->push_back(ExecTrace{event, static_cast<uint16_t>(executed_cc),
                                  static_cast<uint8_t>(inst.op), condition_});
    }
    if (!jumped) {
      ++cc;
    }
  }
}

void PolicyExecutor::DoArith(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  auto arith = static_cast<ArithOp>(inst.op3);
  if (arith == ArithOp::kLoadImm) {
    ops.WriteInt(inst.op1, inst.op2);
    return;
  }
  int64_t lhs = ops.ReadInt(inst.op1);
  int64_t rhs = ops.ReadInt(inst.op2);
  int64_t out;
  switch (arith) {
    case ArithOp::kAdd:
      out = lhs + rhs;
      break;
    case ArithOp::kSub:
      out = lhs - rhs;
      break;
    case ArithOp::kMul:
      out = lhs * rhs;
      break;
    case ArithOp::kDiv:
      if (rhs == 0) {
        throw PolicyError("Arith: division by zero");
      }
      out = lhs / rhs;
      break;
    case ArithOp::kMod:
      if (rhs == 0) {
        throw PolicyError("Arith: modulo by zero");
      }
      out = lhs % rhs;
      break;
    case ArithOp::kMov:
      out = rhs;
      break;
    default:
      throw PolicyError("Arith: invalid sub-operation");
  }
  ops.WriteInt(inst.op1, out);
}

void PolicyExecutor::DoComp(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  int64_t lhs = ops.ReadInt(inst.op1);
  int64_t rhs = ops.ReadInt(inst.op2);
  switch (static_cast<CompOp>(inst.op3)) {
    case CompOp::kGt:
      condition_ = lhs > rhs;
      break;
    case CompOp::kLt:
      condition_ = lhs < rhs;
      break;
    case CompOp::kEq:
      condition_ = lhs == rhs;
      break;
    case CompOp::kNe:
      condition_ = lhs != rhs;
      break;
    case CompOp::kGe:
      condition_ = lhs >= rhs;
      break;
    case CompOp::kLe:
      condition_ = lhs <= rhs;
      break;
    default:
      throw PolicyError("Comp: invalid sub-operation");
  }
}

void PolicyExecutor::DoLogic(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  bool rhs = ops.ReadInt(inst.op2) != 0;
  bool out;
  switch (static_cast<LogicOp>(inst.op3)) {
    case LogicOp::kAnd:
      out = (ops.ReadInt(inst.op1) != 0) && rhs;
      break;
    case LogicOp::kOr:
      out = (ops.ReadInt(inst.op1) != 0) || rhs;
      break;
    case LogicOp::kXor:
      out = (ops.ReadInt(inst.op1) != 0) != rhs;
      break;
    case LogicOp::kNot:
      out = !rhs;
      break;
    default:
      throw PolicyError("Logic: invalid sub-operation");
  }
  ops.WriteInt(inst.op1, out ? 1 : 0);
  condition_ = out;
}

void PolicyExecutor::DoSet(Container* c, const Instruction& inst) {
  mach::VmPage* page = c->operands().ReadPage(inst.op1);
  bool value = inst.op3 != 0;
  switch (static_cast<PageBit>(inst.op2)) {
    case PageBit::kReference:
      page->reference = value;
      break;
    case PageBit::kModify:
      page->modified = value;
      break;
    default:
      throw PolicyError("Set: invalid bit selector");
  }
}

void PolicyExecutor::DoDeQueue(Container* c, const Instruction& inst) {
  mach::PageQueue* queue = c->operands().ReadQueue(inst.op2);
  mach::VmPage* page = static_cast<QueueEnd>(inst.op3) == QueueEnd::kTail
                           ? queue->DequeueTail()
                           : queue->DequeueHead();
  if (page == nullptr) {
    throw PolicyError("DeQueue from an empty queue (guard with EmptyQ or a count)");
  }
  c->operands().WritePage(inst.op1, page);
}

void PolicyExecutor::DoEnQueue(Container* c, const Instruction& inst) {
  mach::VmPage* page = c->operands().ReadPage(inst.op1);
  if (page->owner != c) {
    throw PolicyError("EnQueue of a frame the application does not own");
  }
  if (page->queue != nullptr) {
    throw PolicyError("EnQueue of a page that is already on a queue");
  }
  mach::PageQueue* queue = c->operands().ReadQueue(inst.op2);
  if (static_cast<QueueEnd>(inst.op3) == QueueEnd::kTail) {
    queue->EnqueueTail(page, kernel_->ctx().now());
  } else {
    queue->EnqueueHead(page, kernel_->ctx().now());
  }
}

void PolicyExecutor::DoRequest(Container* c, const Instruction& inst) {
  int64_t n = c->operands().ReadInt(inst.op1);
  if (n < 0) {
    throw PolicyError("Request: negative size");
  }
  mach::PageQueue* dest = c->operands().ReadQueue(inst.op2);
  condition_ = manager_->RequestFrames(c, static_cast<size_t>(n), dest);
}

void PolicyExecutor::DoRelease(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  if (ops.TypeOf(inst.op1) == OperandType::kQueue) {
    mach::VmPage* page = ops.ReadQueue(inst.op1)->DequeueHead();
    if (page == nullptr) {
      condition_ = false;
      return;
    }
    manager_->ReleaseFrame(c, page);
    condition_ = true;
    return;
  }
  mach::VmPage* page = ops.ReadPageOrNull(inst.op1);
  if (page == nullptr) {
    condition_ = false;
    return;
  }
  if (page->owner != c) {
    throw PolicyError("Release of a frame the application does not own");
  }
  if (page->queue != nullptr) {
    throw PolicyError("Release of a page still on a queue (DeQueue it first)");
  }
  manager_->ReleaseFrame(c, page);
  ops.WritePage(inst.op1, nullptr);
  condition_ = true;
}

void PolicyExecutor::DoFlush(Container* c, const Instruction& inst) {
  mach::VmPage* page = c->operands().ReadPage(inst.op1);
  if (page->owner != c) {
    throw PolicyError("Flush of a frame the application does not own");
  }
  if (page->queue != nullptr) {
    throw PolicyError("Flush of a page still on a queue (DeQueue it first)");
  }
  mach::VmPage* replacement = manager_->FlushExchange(c, page);
  c->operands().WritePage(inst.op1, replacement);
  condition_ = true;
}

void PolicyExecutor::DoFind(Container* c, const Instruction& inst) {
  auto vaddr = static_cast<uint64_t>(c->operands().ReadInt(inst.op2));
  mach::VmMapEntry* entry = c->task()->map().Lookup(vaddr);
  mach::VmPage* page = nullptr;
  if (entry != nullptr && entry->object == c->object()) {
    page = c->object()->Lookup(entry->OffsetOf(vaddr));
  }
  c->operands().WritePage(inst.op1, page);
  condition_ = page != nullptr && page->owner == c;
}

void PolicyExecutor::DoWeightedSelect(Container* c, const Instruction& inst) {
  mach::PageQueue* queue = c->operands().ReadQueue(inst.op1);
  auto mode = static_cast<SelectMode>(inst.op3);
  if (mode != SelectMode::kMin && mode != SelectMode::kMax) {
    // Same text the decode-time classifier traps with, so the dual paths agree.
    throw PolicyError("WeightedSelect mode: flag out of range");
  }
  if (queue->empty()) {
    throw PolicyError("replacement-policy command on an empty queue");
  }
  mach::VmPage* best = nullptr;
  queue->ForEach([&](mach::VmPage* p) {
    if (best == nullptr ||
        (mode == SelectMode::kMin ? p->user_word < best->user_word
                                  : p->user_word > best->user_word)) {
      best = p;  // strict comparison: ties keep the page nearest the head
    }
    return true;
  });
  queue->Remove(best);
  c->operands().WritePage(inst.op2, best);
  counters_.Add(kCtrPolicyCommands);
}

void PolicyExecutor::DoSatDotProduct(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  int n = inst.op3;
  if (n < 1 || n > kMaxDotWidth) {
    throw PolicyError("SatDotProduct width: flag out of range");
  }
  if (static_cast<int>(inst.op2) + 2 * n > 256) {
    throw PolicyError("SatDotProduct operands: vector runs past the operand array");
  }
  int64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    int64_t weight = ops.ReadInt(static_cast<uint8_t>(inst.op2 + i));
    int64_t feature = ops.ReadInt(static_cast<uint8_t>(inst.op2 + n + i));
    acc = SatAdd64(acc, SatMul64(weight, feature));
  }
  ops.WriteInt(inst.op1, acc);
}

void PolicyExecutor::DoPageWord(Container* c, const Instruction& inst) {
  OperandArray& ops = c->operands();
  mach::VmPage* page = ops.ReadPage(inst.op1);
  switch (static_cast<PageWordOp>(inst.op3)) {
    case PageWordOp::kLoad:
      ops.WriteInt(inst.op2, page->user_word);
      break;
    case PageWordOp::kStore:
      page->user_word = ops.ReadInt(inst.op2);
      break;
    default:
      throw PolicyError("PageWord op: flag out of range");
  }
}

void PolicyExecutor::DoReplacementPolicy(Container* c, const Instruction& inst) {
  mach::PageQueue* queue = c->operands().ReadQueue(inst.op1);
  if (queue->empty()) {
    throw PolicyError("replacement-policy command on an empty queue");
  }
  mach::VmPage* victim = nullptr;
  switch (inst.op) {
    case Opcode::kFifo:
      // Arrival order: the head is the oldest.
      victim = queue->DequeueHead();
      break;
    case Opcode::kLru: {
      mach::VmPage* best = nullptr;
      queue->ForEach([&](mach::VmPage* p) {
        if (best == nullptr || p->last_reference_ns < best->last_reference_ns) {
          best = p;
        }
        return true;
      });
      queue->Remove(best);
      victim = best;
      break;
    }
    case Opcode::kMru: {
      mach::VmPage* best = nullptr;
      queue->ForEach([&](mach::VmPage* p) {
        if (best == nullptr || p->last_reference_ns >= best->last_reference_ns) {
          best = p;
        }
        return true;
      });
      queue->Remove(best);
      victim = best;
      break;
    }
    default:
      throw PolicyError("not a replacement-policy command");
  }
  c->operands().WritePage(inst.op2, victim);
  counters_.Add(kCtrPolicyCommands);
}

}  // namespace hipec::core
