#include "hipec/validator.h"

#include <sstream>
#include <utility>

namespace hipec::core {

DecodeResult DecodeAndValidate(const PolicyProgram& program, const OperandArray& operands) {
  DecodeResult result;
  if (!program.HasEvent(kEventPageFault)) {
    result.errors.push_back(ValidationError{
        kEventPageFault, 0, "a specific application must handle the PageFault event"});
  }
  if (!program.HasEvent(kEventReclaimFrame)) {
    result.errors.push_back(ValidationError{
        kEventReclaimFrame, 0, "a specific application must handle the ReclaimFrame event"});
  }

  std::vector<DecodeDiag> diags;
  result.program = DecodePolicy(program, operands, &diags);

  size_t next_diag = 0;
  for (int ev = 0; ev < program.event_limit(); ++ev) {
    // The decoder emits diagnostics grouped by ascending event; collect this event's slice.
    size_t begin = next_diag;
    while (next_diag < diags.size() && diags[next_diag].event == ev) {
      ++next_diag;
    }
    const EventProgram& stream = program.event(ev);
    if (stream.words.empty()) {
      continue;
    }
    if (stream.words[0] != kHipecMagic) {
      // A stream that fails the magic check is rejected wholesale; per-command diagnostics
      // would be noise.
      result.errors.push_back(ValidationError{ev, 0, "bad magic number"});
      continue;
    }
    if (stream.CommandCount() == 0) {
      result.errors.push_back(ValidationError{ev, 0, "empty command stream"});
      continue;
    }
    for (size_t i = begin; i < next_diag; ++i) {
      result.errors.push_back(ValidationError{ev, diags[i].cc, diags[i].message});
    }
    bool has_return = false;
    for (const DecodedInst& inst : result.program.event(ev).insts) {
      if (inst.kind == DispatchKind::kReturn) {
        has_return = true;
        break;
      }
    }
    if (!has_return) {
      result.errors.push_back(ValidationError{ev, 0, "no Return command in event stream"});
    }
    if (!result.program.event(ev).jit_eligible) {
      result.jit_ineligible_events.push_back(ev);
    }
  }
  return result;
}

std::vector<ValidationError> ValidatePolicy(const PolicyProgram& program,
                                            const OperandArray& operands) {
  return DecodeAndValidate(program, operands).errors;
}

std::string ValidationError::ToString() const {
  std::ostringstream os;
  os << "event " << event << " cc " << cc << ": " << message;
  return os.str();
}

std::string FormatErrors(const std::vector<ValidationError>& errors) {
  std::ostringstream os;
  for (const ValidationError& e : errors) {
    os << e.ToString() << "\n";
  }
  return os.str();
}

}  // namespace hipec::core
