#include "hipec/validator.h"

#include <sstream>

namespace hipec::core {
namespace {

class EventValidator {
 public:
  EventValidator(const PolicyProgram& program, const OperandArray& operands, int event,
                 std::vector<ValidationError>* errors)
      : program_(program), operands_(operands), event_(event), errors_(errors) {}

  void Run() {
    const EventProgram& stream = program_.event(event_);
    if (stream.words.empty()) {
      return;
    }
    if (stream.words[0] != kHipecMagic) {
      Error(0, "bad magic number");
      return;
    }
    if (stream.CommandCount() == 0) {
      Error(0, "empty command stream");
      return;
    }
    bool has_return = false;
    for (size_t cc = 1; cc < stream.words.size(); ++cc) {
      cc_ = static_cast<int>(cc);
      Instruction inst = stream.At(cc);
      if (!IsValidOpcode(static_cast<uint8_t>(inst.op))) {
        Error(cc_, "invalid operator code");
        continue;
      }
      if (inst.op == Opcode::kReturn) {
        has_return = true;
      }
      CheckInstruction(inst, stream);
    }
    if (!has_return) {
      Error(0, "no Return command in event stream");
    }
  }

 private:
  void Error(int cc, const std::string& message) {
    errors_->push_back(ValidationError{event_, cc, message});
  }

  // --- operand-kind checks -------------------------------------------------------------------

  bool IsIntReadable(uint8_t index) const {
    OperandType t = operands_.TypeOf(index);
    return t == OperandType::kInt || t == OperandType::kQueueCount;
  }
  bool IsIntWritable(uint8_t index) const {
    return operands_.TypeOf(index) == OperandType::kInt && !operands_.entry(index).read_only;
  }
  bool IsPage(uint8_t index) const { return operands_.TypeOf(index) == OperandType::kPage; }
  bool IsQueue(uint8_t index) const { return operands_.TypeOf(index) == OperandType::kQueue; }

  void WantIntReadable(uint8_t index, const char* role) {
    if (!IsIntReadable(index)) {
      Error(cc_, std::string(role) + ": operand is not an integer");
    }
  }
  void WantIntWritable(uint8_t index, const char* role) {
    if (!IsIntWritable(index)) {
      Error(cc_, std::string(role) + ": operand is not a writable integer");
    }
  }
  void WantPage(uint8_t index, const char* role) {
    if (!IsPage(index)) {
      Error(cc_, std::string(role) + ": operand is not a page variable");
    }
  }
  void WantQueue(uint8_t index, const char* role) {
    if (!IsQueue(index)) {
      Error(cc_, std::string(role) + ": operand is not a queue");
    }
  }
  void WantFlagRange(uint8_t flag, uint8_t lo, uint8_t hi, const char* role) {
    if (flag < lo || flag > hi) {
      Error(cc_, std::string(role) + ": flag out of range");
    }
  }

  void CheckInstruction(const Instruction& inst, const EventProgram& stream) {
    switch (inst.op) {
      case Opcode::kReturn:
        // Return's operand may be any defined entry (or 0 when nothing is returned).
        if (inst.op1 != 0 && operands_.TypeOf(inst.op1) == OperandType::kUnset) {
          Error(cc_, "Return: undefined operand");
        }
        break;
      case Opcode::kArith:
        WantIntWritable(inst.op1, "Arith dst");
        WantFlagRange(inst.op3, 1, 7, "Arith op");
        if (inst.op3 != static_cast<uint8_t>(ArithOp::kLoadImm)) {
          WantIntReadable(inst.op2, "Arith src");
        }
        break;
      case Opcode::kComp:
        WantIntReadable(inst.op1, "Comp lhs");
        WantIntReadable(inst.op2, "Comp rhs");
        WantFlagRange(inst.op3, 1, 6, "Comp op");
        break;
      case Opcode::kLogic:
        WantIntWritable(inst.op1, "Logic dst");
        WantIntReadable(inst.op2, "Logic src");
        WantFlagRange(inst.op3, 1, 4, "Logic op");
        break;
      case Opcode::kEmptyQ:
        WantQueue(inst.op1, "EmptyQ");
        break;
      case Opcode::kInQ:
        WantQueue(inst.op1, "InQ queue");
        WantPage(inst.op2, "InQ page");
        break;
      case Opcode::kJump:
        if (inst.op3 < 1 || static_cast<size_t>(inst.op3) >= stream.words.size()) {
          Error(cc_, "Jump: target outside the event stream");
        }
        break;
      case Opcode::kDeQueue:
        WantPage(inst.op1, "DeQueue dst");
        WantQueue(inst.op2, "DeQueue queue");
        WantFlagRange(inst.op3, 1, 2, "DeQueue end");
        break;
      case Opcode::kEnQueue:
        WantPage(inst.op1, "EnQueue page");
        WantQueue(inst.op2, "EnQueue queue");
        WantFlagRange(inst.op3, 1, 2, "EnQueue end");
        break;
      case Opcode::kRequest:
        WantIntReadable(inst.op1, "Request size");
        WantQueue(inst.op2, "Request dst queue");
        break;
      case Opcode::kRelease:
        if (!IsPage(inst.op1) && !IsQueue(inst.op1)) {
          Error(cc_, "Release: operand is neither a page nor a queue");
        }
        break;
      case Opcode::kFlush:
        WantPage(inst.op1, "Flush");
        break;
      case Opcode::kSet:
        WantPage(inst.op1, "Set page");
        WantFlagRange(inst.op2, 1, 2, "Set bit");
        WantFlagRange(inst.op3, 0, 1, "Set value");
        break;
      case Opcode::kRef:
        WantPage(inst.op1, "Ref");
        break;
      case Opcode::kMod:
        WantPage(inst.op1, "Mod");
        break;
      case Opcode::kFind:
        WantPage(inst.op1, "Find dst");
        WantIntReadable(inst.op2, "Find vaddr");
        break;
      case Opcode::kActivate:
        if (!program_.HasEvent(inst.op1)) {
          Error(cc_, "Activate: no such event");
        }
        break;
      case Opcode::kFifo:
      case Opcode::kLru:
      case Opcode::kMru:
        WantQueue(inst.op1, "replacement-policy queue");
        WantPage(inst.op2, "replacement-policy dst");
        break;
      case Opcode::kMigrate:
        WantPage(inst.op1, "Migrate page");
        WantIntReadable(inst.op2, "Migrate target container id");
        break;
      case Opcode::kUnlink:
        WantPage(inst.op1, "Unlink");
        break;
    }
  }

  const PolicyProgram& program_;
  const OperandArray& operands_;
  int event_;
  int cc_ = 0;
  std::vector<ValidationError>* errors_;
};

}  // namespace

std::vector<ValidationError> ValidatePolicy(const PolicyProgram& program,
                                            const OperandArray& operands) {
  std::vector<ValidationError> errors;
  if (!program.HasEvent(kEventPageFault)) {
    errors.push_back(ValidationError{kEventPageFault, 0,
                                     "a specific application must handle the PageFault event"});
  }
  if (!program.HasEvent(kEventReclaimFrame)) {
    errors.push_back(ValidationError{
        kEventReclaimFrame, 0, "a specific application must handle the ReclaimFrame event"});
  }
  for (int ev = 0; ev < program.event_limit(); ++ev) {
    EventValidator(program, operands, ev, &errors).Run();
  }
  return errors;
}

std::string ValidationError::ToString() const {
  std::ostringstream os;
  os << "event " << event << " cc " << cc << ": " << message;
  return os.str();
}

std::string FormatErrors(const std::vector<ValidationError>& errors) {
  std::ostringstream os;
  for (const ValidationError& e : errors) {
    os << e.ToString() << "\n";
  }
  return os.str();
}

}  // namespace hipec::core
