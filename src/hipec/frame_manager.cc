#include "hipec/frame_manager.h"

#include <algorithm>
#include <utility>

#include "sim/check.h"

namespace hipec::core {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrFramesGranted = sim::InternCounter("manager.frames_granted");
const sim::CounterId kCtrBurstHits = sim::InternCounter("manager.burst_hits");
const sim::CounterId kCtrBurstRaised = sim::InternCounter("manager.burst_raised");
const sim::CounterId kCtrBurstLowered = sim::InternCounter("manager.burst_lowered");
const sim::CounterId kCtrAdmissionsRejected = sim::InternCounter("manager.admissions_rejected");
const sim::CounterId kCtrAdmissions = sim::InternCounter("manager.admissions");
const sim::CounterId kCtrRequests = sim::InternCounter("manager.requests");
const sim::CounterId kCtrRequestsRejected = sim::InternCounter("manager.requests_rejected");
const sim::CounterId kCtrFramesReleased = sim::InternCounter("manager.frames_released");
const sim::CounterId kCtrFlushes = sim::InternCounter("manager.flushes");
const sim::CounterId kCtrFlushesClean = sim::InternCounter("manager.flushes_clean");
const sim::CounterId kCtrFlushesSync = sim::InternCounter("manager.flushes_sync");
const sim::CounterId kCtrLaundryDone = sim::InternCounter("manager.laundry_done");
const sim::CounterId kCtrFlushesAsync = sim::InternCounter("manager.flushes_async");
const sim::CounterId kCtrMigrationsRejected = sim::InternCounter("manager.migrations_rejected");
const sim::CounterId kCtrMigrations = sim::InternCounter("manager.migrations");
const sim::CounterId kCtrNormalReclaims = sim::InternCounter("manager.normal_reclaims");
const sim::CounterId kCtrForcedReclaims = sim::InternCounter("manager.forced_reclaims");
const sim::CounterId kCtrLeakedFramesRecovered = sim::InternCounter("manager.leaked_frames_recovered");
const sim::CounterId kCtrContainersRemoved = sim::InternCounter("manager.containers_removed");

// Probe ids: allocation latency, pool occupancy after each grant, and forced-reclamation
// batch sizes. All recording sites are guarded by obs::ProbesEnabled().
const obs::ProbeId kPrbRequestNs = obs::InternProbe("manager.request_ns");
const obs::ProbeId kPrbOccupancyFrames = obs::InternProbe("manager.occupancy_frames");
const obs::ProbeId kPrbForcedReclaimFrames = obs::InternProbe("manager.forced_reclaim_frames");

}  // namespace

GlobalFrameManager::GlobalFrameManager(mach::Kernel* kernel, FrameManagerConfig config)
    : kernel_(kernel),
      config_(config),
      reserve_("hipec_manager_reserve"),
      laundry_("hipec_manager_laundry") {
  boot_free_frames_ = kernel_->boot_free_frames();
  partition_burst_ = static_cast<size_t>(config_.partition_burst_fraction *
                                         static_cast<double>(boot_free_frames_));
  // Stock the clean reserve used by Flush exchanges.
  bool ok = kernel_->daemon().AllocFramesForManager(config_.reserve_frames, &reserve_, this);
  HIPEC_CHECK_MSG(ok, "boot: cannot stock the flush reserve");
  stocked_reserve_ = reserve_.count();
}

void GlobalFrameManager::EnableConcurrent() {
  mu_.Enable(true);
  counters_.EnableConcurrent();
  probes_.EnableConcurrent();
}

void GlobalFrameManager::PollCompletions() {
  if (!kernel_->clock().deterministic()) {
    kernel_->clock().PollDue();
  }
}

// ------------------------------------------------------------------ allocation-ordered list

void GlobalFrameManager::TrackAlloc(mach::VmPage* page) {
  HIPEC_CHECK(!page->on_alloc_list);
  page->on_alloc_list = true;
  page->alloc_seq = next_alloc_seq_++;
  page->alloc_prev = alloc_tail_;
  page->alloc_next = nullptr;
  if (alloc_tail_ != nullptr) {
    alloc_tail_->alloc_next = page;
  } else {
    alloc_head_ = page;
  }
  alloc_tail_ = page;
}

void GlobalFrameManager::UntrackAlloc(mach::VmPage* page) {
  if (!page->on_alloc_list) {
    return;
  }
  if (page->alloc_prev != nullptr) {
    page->alloc_prev->alloc_next = page->alloc_next;
  } else {
    alloc_head_ = page->alloc_next;
  }
  if (page->alloc_next != nullptr) {
    page->alloc_next->alloc_prev = page->alloc_prev;
  } else {
    alloc_tail_ = page->alloc_prev;
  }
  page->alloc_prev = page->alloc_next = nullptr;
  page->on_alloc_list = false;
}

// ------------------------------------------------------------------ grants

bool GlobalFrameManager::GrantFrames(Container* container, size_t n, mach::PageQueue* dest) {
  if (!kernel_->daemon().AllocFramesForManager(n, dest, container)) {
    // Deterministic mode cannot get here (EnsureManagerFrames just succeeded); with real
    // threads, concurrent non-specific faults may have drained the pool in between.
    return false;
  }
  // The n new pages are the queue's last n entries; track them on the allocation-ordered
  // list oldest-first so FAFR's forced reclamation sees true allocation order.
  std::vector<mach::VmPage*> granted;
  granted.reserve(n);
  mach::VmPage* page = dest->tail();
  for (size_t i = 0; i < n; ++i) {
    HIPEC_CHECK(page != nullptr);
    granted.push_back(page);
    page = page->q_prev;
  }
  for (auto it = granted.rbegin(); it != granted.rend(); ++it) {
    TrackAlloc(*it);
  }
  container->allocated_frames += n;
  total_specific_ += n;
  counters_.Add(kCtrFramesGranted, static_cast<int64_t>(n));
  if (obs::ProbesEnabled()) {
    probes_.Record(kPrbOccupancyFrames, static_cast<int64_t>(total_specific_));
  }
  kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kManager, 0,
                           container->id(), n);
  return true;
}

bool GlobalFrameManager::EnsureManagerFrames(size_t n, Container* requester) {
  auto& daemon = kernel_->daemon();
  if (daemon.AvailableForManager() >= n) {
    return true;
  }
  daemon.Balance();
  if (daemon.AvailableForManager() >= n) {
    return true;
  }
  NormalReclaim(n - daemon.AvailableForManager(), requester);
  if (daemon.AvailableForManager() >= n) {
    return true;
  }
  ForcedReclaim(n - daemon.AvailableForManager(), requester);
  return daemon.AvailableForManager() >= n;
}

bool GlobalFrameManager::CheckBurst(Container* requester, size_t n) {
  if (total_specific_ + n <= partition_burst_) {
    return true;
  }
  counters_.Add(kCtrBurstHits);
  NormalReclaim(total_specific_ + n - partition_burst_, requester);
  if (total_specific_ + n <= partition_burst_) {
    return true;
  }
  ForcedReclaim(total_specific_ + n - partition_burst_, requester);
  return total_specific_ + n <= partition_burst_;
}

void GlobalFrameManager::MaybeAdaptBurst() {
  if (!config_.adaptive_burst) {
    return;
  }
  sim::Nanos now = kernel_->clock().now();
  if (last_adapt_ns_ >= 0 && now - last_adapt_ns_ < config_.burst_adapt_interval_ns) {
    return;
  }
  last_adapt_ns_ = now;
  int64_t daemon_evictions = kernel_->daemon().counters().Get("pageout.evictions");
  int64_t rejected = counters_.Get("manager.requests_rejected") +
                     counters_.Get("manager.admissions_rejected");
  bool nonspecific_pressure = daemon_evictions > last_daemon_evictions_;
  bool specific_pressure = rejected > last_requests_rejected_;
  last_daemon_evictions_ = daemon_evictions;
  last_requests_rejected_ = rejected;

  auto clamp = [this](double fraction) {
    return static_cast<size_t>(
        std::clamp(fraction, config_.burst_min_fraction, config_.burst_max_fraction) *
        static_cast<double>(boot_free_frames_));
  };
  double current =
      static_cast<double>(partition_burst_) / static_cast<double>(boot_free_frames_);
  if (specific_pressure && !nonspecific_pressure) {
    partition_burst_ = clamp(current + config_.burst_step_fraction);
    counters_.Add(kCtrBurstRaised);
  } else if (nonspecific_pressure && !specific_pressure) {
    partition_burst_ = clamp(current - config_.burst_step_fraction);
    counters_.Add(kCtrBurstLowered);
    // Enforce the lowered watermark right away.
    if (total_specific_ > partition_burst_) {
      size_t excess = total_specific_ - partition_burst_;
      if (NormalReclaim(excess, nullptr) < excess && total_specific_ > partition_burst_) {
        ForcedReclaim(total_specific_ - partition_burst_, nullptr);
      }
    }
  }
}

bool GlobalFrameManager::AdmitContainer(Container* container) {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  MaybeAdaptBurst();
  size_t n = container->min_frames();
  if (!CheckBurst(container, n) || !EnsureManagerFrames(n, container) ||
      !GrantFrames(container, n, &container->free_q())) {
    counters_.Add(kCtrAdmissionsRejected);
    NotifyDecision("admit-reject");
    return false;
  }
  containers_.push_back(container);
  counters_.Add(kCtrAdmissions);
  NotifyDecision("admit");
  return true;
}

bool GlobalFrameManager::RequestFrames(Container* container, size_t n, mach::PageQueue* dest) {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  const sim::Nanos start_ns = kernel_->clock().now();
  MaybeAdaptBurst();
  counters_.Add(kCtrRequests);
  ++container->requests_made;
  if (!CheckBurst(container, n) || !EnsureManagerFrames(n, container) ||
      !GrantFrames(container, n, dest)) {
    counters_.Add(kCtrRequestsRejected);
    ++container->requests_rejected;
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbRequestNs, kernel_->clock().now() - start_ns);
    }
    kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kManager, 1,
                             container->id(), n);
    NotifyDecision("request-reject");
    return false;
  }
  if (obs::ProbesEnabled()) {
    probes_.Record(kPrbRequestNs, kernel_->clock().now() - start_ns);
  }
  NotifyDecision("request");
  return true;
}

void GlobalFrameManager::OnMemoryPressure() {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  MaybeAdaptBurst();
}

void GlobalFrameManager::ReleaseFrame(Container* container, mach::VmPage* page) {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  HIPEC_CHECK_MSG(page->owner == container, "Release of a frame the application does not own");
  HIPEC_CHECK_MSG(page->queue == nullptr, "Release of a frame still on a queue");
  if (page->object != nullptr) {
    // The caller executes on behalf of the owning task and already holds its lock (its own
    // fault, or a reclaim runner that try-locked the victim), so the try edge cannot fail.
    bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/true);
    HIPEC_CHECK(evicted);
  }
  UntrackAlloc(page);
  kernel_->daemon().ReturnFrame(page);
  HIPEC_CHECK(container->allocated_frames > 0);
  --container->allocated_frames;
  --total_specific_;
  counters_.Add(kCtrFramesReleased);
  NotifyDecision("release");
}

mach::VmPage* GlobalFrameManager::FlushExchange(Container* container, mach::VmPage* page) {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  HIPEC_CHECK_MSG(page->owner == container, "Flush of a frame the application does not own");
  counters_.Add(kCtrFlushes);

  bool was_dirty = page->modified;
  uint64_t block = 0;
  if (page->object != nullptr) {
    if (was_dirty) {
      page->object->MarkPagedOut(page->offset);
      block = page->object->BlockFor(page->offset);
    }
    // Caller holds the owning task's lock (see ReleaseFrame).
    bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/false);  // we handle the write
    HIPEC_CHECK(evicted);
  }
  if (!was_dirty) {
    counters_.Add(kCtrFlushesClean);
    kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kManager, 5,
                             container->id(), 0);
    NotifyDecision("flush-clean");
    return page;
  }

  mach::VmPage* replacement = reserve_.DequeueHead();
  if (replacement == nullptr) {
    // Reserve exhausted: fall back to a synchronous write. This is exactly the executor-
    // stalling situation the exchange design exists to avoid (§4.3.1), so count it loudly.
    counters_.Add(kCtrFlushesSync);
    kernel_->disk().WritePageSync(block);
    page->modified = false;
    kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kManager, 4,
                             container->id(), block);
    NotifyDecision("flush-sync");
    return page;
  }

  // Exchange: the dirty frame joins the laundry and is written back later; the clean reserve
  // frame takes its place in the application's allocation.
  replacement->owner = container;
  replacement->user_word = 0;  // reserve frames may carry a previous owner's score
  UntrackAlloc(page);
  TrackAlloc(replacement);
  page->owner = this;
  page->modified = false;  // contents are en route to disk
  laundry_.EnqueueTail(page, kernel_->clock().now());
  kernel_->disk().WritePageAsync(block, [this, page] {
    // Deterministic: fires during a foreground Advance. Real threads: fires from
    // PollCompletions (before mu_ is taken) or DrainWrites, so take the manager lock here.
    sim::ScopedLock lock(mu_);
    laundry_.Remove(page);
    reserve_.EnqueueTail(page, kernel_->clock().now());
    counters_.Add(kCtrLaundryDone);
  });
  counters_.Add(kCtrFlushesAsync);
  kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kManager, 3,
                           container->id(), block);
  NotifyDecision("flush-exchange");
  return replacement;
}

bool GlobalFrameManager::MigrateFrame(Container* from, mach::VmPage* page, uint64_t target_id) {
  PollCompletions();
  sim::ScopedLock lock(mu_);
  HIPEC_CHECK_MSG(page->owner == from, "Migrate of a frame the application does not own");
  HIPEC_CHECK_MSG(page->queue == nullptr, "Migrate of a page still on a queue");
  Container* target = nullptr;
  for (Container* c : containers_) {
    if (c->id() == target_id) {
      target = c;
      break;
    }
  }
  if (target == nullptr || target == from || !target->accepts_migration ||
      target->task()->terminated()) {
    counters_.Add(kCtrMigrationsRejected);
    NotifyDecision("migrate-reject");
    return false;
  }
  if (page->object != nullptr) {
    // Caller holds the owning task's lock (see ReleaseFrame).
    bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/true);
    HIPEC_CHECK(evicted);
  }
  HIPEC_CHECK(from->allocated_frames > 0);
  --from->allocated_frames;
  ++target->allocated_frames;  // total_specific_ unchanged: the frame stays specific
  page->owner = target;
  page->user_word = 0;  // the source policy's score means nothing to the target
  target->free_q().EnqueueTail(page, kernel_->clock().now());
  counters_.Add(kCtrMigrations);
  NotifyDecision("migrate");
  return true;
}

// ------------------------------------------------------------------ reclamation

size_t GlobalFrameManager::NormalReclaim(size_t needed, Container* exclude) {
  size_t got = 0;
  // Walk containers in the configured victim order (FAFR = creation order, the paper's
  // policy); each victim's own ReclaimFrame policy decides *which* pages it gives up.
  // Iterate over a snapshot: a misbehaving victim is terminated inside the runner, which
  // removes it from containers_.
  std::vector<Container*> snapshot = containers_;
  switch (config_.reclaim_order) {
    case ReclaimOrder::kFafr:
      break;
    case ReclaimOrder::kRoundRobin:
      if (!snapshot.empty()) {
        size_t shift = reclaim_cursor_++ % snapshot.size();
        std::rotate(snapshot.begin(),
                    snapshot.begin() + static_cast<ptrdiff_t>(shift), snapshot.end());
      }
      break;
    case ReclaimOrder::kLargestFirst:
      std::stable_sort(snapshot.begin(), snapshot.end(), [](Container* a, Container* b) {
        return a->allocated_frames > b->allocated_frames;
      });
      break;
  }
  for (Container* c : snapshot) {
    if (got >= needed) {
      break;
    }
    if (c == exclude || c->task()->terminated()) {
      continue;
    }
    size_t surplus =
        c->allocated_frames > c->min_frames() ? c->allocated_frames - c->min_frames() : 0;
    if (surplus == 0 || !reclaim_runner_) {
      continue;
    }
    size_t ask = std::min(surplus, needed - got);
    uint64_t victim_id = c->id();
    size_t released = reclaim_runner_(c, ask);  // may free c; do not touch c afterwards
    got += released;
    counters_.Add(kCtrNormalReclaims, static_cast<int64_t>(released));
    kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kReclaim, 0,
                             victim_id, released);
  }
  return got;
}

size_t GlobalFrameManager::ForcedReclaim(size_t needed, Container* exclude) {
  size_t got = 0;
  // One kReclaim(code=1) trace event per run of consecutive seizures from the same victim,
  // so a large seizure does not flood the ring with per-frame events.
  uint64_t run_victim = 0;
  uint64_t run_frames = 0;
  auto emit_run = [&] {
    if (run_frames > 0) {
      kernel_->tracer().Record(kernel_->clock().now(), sim::TraceCategory::kReclaim, 1,
                               run_victim, run_frames);
      run_frames = 0;
    }
  };
  mach::VmPage* page = alloc_head_;
  while (page != nullptr && got < needed) {
    mach::VmPage* next = page->alloc_next;
    auto* owner = static_cast<Container*>(page->owner);
    if (owner != nullptr && owner != exclude && owner != reinterpret_cast<Container*>(this) &&
        owner->allocated_frames > owner->min_frames()) {
      // Seizing touches the victim's private queues and pmap state, all guarded by the
      // victim's task lock — which ranks below the manager lock held here, so it may only
      // be try-locked (the Linux-shrinker escape). A busy victim's frame is skipped; the
      // FAFR walk continues with the next-oldest frame. Always succeeds deterministically.
      sim::ScopedTryLock victim_lock(owner->task()->mutex());
      if (!victim_lock.owns()) {
        page = next;
        continue;
      }
      if (run_frames > 0 && run_victim != owner->id()) {
        emit_run();
      }
      run_victim = owner->id();
      ++run_frames;
      if (page->queue != nullptr) {
        page->queue.load()->Remove(page);
      }
      // Seize. Dirty contents must be saved; forced reclamation is a desperation path, so the
      // write is charged synchronously to the requester.
      if (page->object != nullptr && page->modified) {
        page->object->MarkPagedOut(page->offset);
        uint64_t block = page->object->BlockFor(page->offset);
        kernel_->disk().WritePageSync(block);
      }
      bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/false);
      HIPEC_CHECK(evicted);  // victim task lock held
      UntrackAlloc(page);
      --owner->allocated_frames;
      ++owner->frames_force_reclaimed;
      --total_specific_;
      kernel_->daemon().ReturnFrame(page);
      ++got;
      counters_.Add(kCtrForcedReclaims);
    }
    page = next;
  }
  emit_run();
  if (got > 0 && obs::ProbesEnabled()) {
    probes_.Record(kPrbForcedReclaimFrames, static_cast<int64_t>(got));
  }
  return got;
}

void GlobalFrameManager::RemoveContainer(Container* container) {
  // Recursive entry is sanctioned: reclamation can terminate a victim whose teardown lands
  // back here while the reclaiming thread still holds mu_. The caller executes on behalf of
  // the container's task and holds its lock, so every EvictPage below must succeed.
  sim::ScopedLock lock(mu_);
  // Collect every frame the container holds: its three standard queues, user queues, and any
  // page variables holding off-queue pages.
  auto drain_queue = [&](mach::PageQueue& q) {
    while (mach::VmPage* page = q.DequeueHead()) {
      if (page->object != nullptr) {
        bool evicted =
            kernel_->EvictPage(page, /*flush_if_dirty=*/container->object()->file_backed());
        HIPEC_CHECK(evicted);
      }
      UntrackAlloc(page);
      kernel_->daemon().ReturnFrame(page);
      HIPEC_CHECK(container->allocated_frames > 0);
      --container->allocated_frames;
      --total_specific_;
    }
  };
  drain_queue(container->free_q());
  drain_queue(container->active_q());
  drain_queue(container->inactive_q());
  for (auto& q : container->user_queues()) {
    drain_queue(*q);
  }
  // Off-queue pages referenced only by page-variable operands.
  for (size_t i = 0; i < OperandArray::kEntries; ++i) {
    const OperandEntry& e = container->operands().entry(static_cast<uint8_t>(i));
    if (e.type == OperandType::kPage && e.page != nullptr && e.page->owner == container &&
        e.page->queue == nullptr) {
      mach::VmPage* page = e.page;
      if (page->object != nullptr) {
        bool evicted =
            kernel_->EvictPage(page, /*flush_if_dirty=*/container->object()->file_backed());
        HIPEC_CHECK(evicted);
      }
      UntrackAlloc(page);
      kernel_->daemon().ReturnFrame(page);
      HIPEC_CHECK(container->allocated_frames > 0);
      --container->allocated_frames;
      --total_specific_;
      container->operands().WritePage(static_cast<uint8_t>(i), nullptr);
    }
  }
  // Recovery sweep: a buggy or malicious policy may have leaked frames (dequeued them and
  // overwritten the only page variable that referenced them). They are unreachable through
  // the container's structures, so find them by scanning physical memory — part of what a
  // stronger security checker "could do more" of (§6).
  if (container->allocated_frames > 0) {
    kernel_->ForEachFrame([&](mach::VmPage* page) {
      if (page->owner == container) {
        if (page->queue != nullptr) {
          page->queue.load()->Remove(page);
        }
        if (page->object != nullptr) {
          bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/false);
          HIPEC_CHECK(evicted);
        }
        UntrackAlloc(page);
        kernel_->daemon().ReturnFrame(page);
        HIPEC_CHECK(container->allocated_frames > 0);
        --container->allocated_frames;
        --total_specific_;
        counters_.Add(kCtrLeakedFramesRecovered);
      }
    });
  }
  HIPEC_CHECK_MSG(container->allocated_frames == 0,
                  "container still holds " << container->allocated_frames
                                           << " frames after teardown");
  std::erase(containers_, container);
  counters_.Add(kCtrContainersRemoved);
  NotifyDecision("remove-container");
}

}  // namespace hipec::core
