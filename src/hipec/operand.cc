#include "hipec/operand.h"

#include <cstdio>

namespace hipec::core {

void OperandArray::Fail(uint8_t index, const char* message) {
  // snprintf into a stack buffer: the accessors above sit on the interpreter's hot path, and
  // a cold throw must not pull stream machinery (or a heap allocation) into their callers.
  char buf[160];
  std::snprintf(buf, sizeof(buf), "operand 0x%x: %s", index, message);
  throw PolicyError(buf);
}

void OperandArray::DefineInt(uint8_t index, int64_t value, bool read_only) {
  entries_[index] = OperandEntry{OperandType::kInt, read_only, value, nullptr, nullptr};
}

void OperandArray::DefinePage(uint8_t index) {
  entries_[index] = OperandEntry{OperandType::kPage, false, 0, nullptr, nullptr};
}

void OperandArray::DefineQueue(uint8_t index, mach::PageQueue* queue) {
  entries_[index] = OperandEntry{OperandType::kQueue, false, 0, nullptr, queue};
}

void OperandArray::DefineQueueCount(uint8_t index, mach::PageQueue* queue) {
  entries_[index] = OperandEntry{OperandType::kQueueCount, true, 0, nullptr, queue};
}

int64_t OperandArray::ReadInt(uint8_t index) const {
  const OperandEntry& e = entries_[index];
  if (e.type == OperandType::kInt) {
    return e.int_value;
  }
  if (e.type == OperandType::kQueueCount) {
    return static_cast<int64_t>(e.queue->count());
  }
  Fail(index, "expected an integer operand");
}

void OperandArray::WriteInt(uint8_t index, int64_t value) {
  OperandEntry& e = entries_[index];
  if (e.type != OperandType::kInt) {
    Fail(index, "expected a writable integer operand");
  }
  if (e.read_only) {
    Fail(index, "write to a read-only operand");
  }
  e.int_value = value;
}

mach::VmPage* OperandArray::ReadPage(uint8_t index) const {
  mach::VmPage* page = ReadPageOrNull(index);
  if (page == nullptr) {
    Fail(index, "page variable is empty");
  }
  return page;
}

mach::VmPage* OperandArray::ReadPageOrNull(uint8_t index) const {
  const OperandEntry& e = entries_[index];
  if (e.type != OperandType::kPage) {
    Fail(index, "expected a page operand");
  }
  return e.page;
}

void OperandArray::WritePage(uint8_t index, mach::VmPage* page) {
  OperandEntry& e = entries_[index];
  if (e.type != OperandType::kPage) {
    Fail(index, "expected a page operand");
  }
  e.page = page;
}

mach::PageQueue* OperandArray::ReadQueue(uint8_t index) const {
  const OperandEntry& e = entries_[index];
  if (e.type != OperandType::kQueue) {
    Fail(index, "expected a queue operand");
  }
  return e.queue;
}

}  // namespace hipec::core
