// The decode-once program IR.
//
// A policy's raw 32-bit command words are decoded, classified and verified exactly once —
// when the policy is installed (or, for test harnesses that drive the executor directly, on
// first execution) — into an array of DecodedInst records. The executor then runs
// table-driven dispatch over the IR and never touches a raw word again. This mirrors how
// modern in-kernel policy engines (eBPF) split verification from execution: the expensive
// per-command work (operator decode, operand-kind classification, branch-target bounds
// checks) happens at load time, and the hot loop trusts the pre-validated stream.
//
// Invariants the decoder establishes, which the executor relies on:
//   * `insts` has one slot per raw word plus one: slot 0 (the magic word) and the one-past-
//     the-end slot are kTrapOutside, so the interpreter needs no per-iteration bounds check —
//     control that leaves the stream lands on a trap. CC therefore indexes `insts` exactly as
//     it indexes the raw words (Table 2 numbering, commands start at 1).
//   * Jump targets are resolved and bounds-checked at decode time; a target outside
//     [1, CommandCount] is redirected to trap slot 0, reproducing the legacy interpreter's
//     "control fell outside the command stream" error at the moment the jump is taken.
//   * Operator code + sub-operation flag are fused into one dense DispatchKind, so the
//     interpreter has a single jump-table dispatch and no secondary flag switches.
//   * Operand indices are pre-classified against the container's operand-array layout. A
//     command whose operands cannot be classified becomes kTrapError and raises PolicyError
//     with the decode-time diagnostic if it is ever executed — byte-for-byte the legacy
//     outcome (ExecOutcome::kError), with a better message and no undefined behavior.
//
// Raw-word interpretation lives here and nowhere else: the validator (decode-and-verify
// pass), the engine's install path, the executor, the disassembler and hipecc all consume
// this IR. `Instruction::Decode` remains the word-level codec primitive used by this module
// and by the legacy reference interpreter kept for dual-path verification.
#ifndef HIPEC_HIPEC_DECODED_H_
#define HIPEC_HIPEC_DECODED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hipec/instruction.h"
#include "hipec/operand.h"
#include "hipec/program.h"

namespace hipec::core {

// Dense dispatch indices. Operator code and sub-operation flag are fused (Arith/Comp/Logic/
// Set/DeQueue/EnQueue each expand), and type-dependent commands (Release) split by the
// decode-time operand class. Adding an opcode: extend Opcode, kNames (instruction.cc), the
// classifier in decoded.cc, the dispatch loop in executor.cc, kKeepsCondition below, and the
// JIT (a template in jit_x86_64.cc or a bridge in jit.cc, plus DispatchKindName) — the
// static_asserts at each site fire if any of them desynchronize.
enum class DispatchKind : uint8_t {
  kReturn = 0,
  kJump,
  kActivate,
  kArithAdd,
  kArithSub,
  kArithMul,
  kArithDiv,
  kArithMod,
  kArithMov,
  kArithLoadImm,
  kCompGt,
  kCompLt,
  kCompEq,
  kCompNe,
  kCompGe,
  kCompLe,
  kLogicAnd,
  kLogicOr,
  kLogicXor,
  kLogicNot,
  kEmptyQ,
  kInQ,
  kDeQueueHead,
  kDeQueueTail,
  kEnQueueHead,
  kEnQueueTail,
  kRequest,
  kReleaseQueue,
  kReleasePage,
  kFlush,
  kSetReference,
  kSetModify,
  kRefBit,
  kModBit,
  kFind,
  kFifo,
  kLru,
  kMru,
  kMigrate,
  kUnlink,
  // WeightedSelect splits on the SelectMode flag at decode time, mirroring DeQueue/EnQueue.
  // a is the queue, b the destination page variable.
  kWeightedSelectMin,
  kWeightedSelectMax,
  // a is the destination int, b the base slot; the width n rides in DecodedInst::target.
  kSatDotProduct,
  // Per-page scratch-word access, split on the PageWordOp flag. a is the page variable, b the
  // integer operand.
  kPageWordLoad,
  kPageWordStore,
  // --- superinstructions -----------------------------------------------------------------
  // Adjacent command pairs the fusion pass (DecodePolicy with fuse_superinstructions) folds
  // into one dispatch, halving loop overhead on the dominant fault-path idioms. The fused
  // record lives in the *first* slot of the pair; the second slot keeps its original decoding
  // and is reachable only via an explicit Jump (the pass refuses to fuse across jump
  // targets). A fused handler still charges budget/decode-cost and emits a trace entry per
  // original command, so counters and dual-path traces are identical to the unfused stream.
  //
  // Comp ; Jump — compare and branch on the result. One kind per CompOp, in CompOp order
  // (kGt..kLe), so `base + sub` arithmetic mirrors the kCompGt..kCompLe block. a/b are the
  // compare operands, raw_op the Comp operator byte, target the resolved jump target.
  kFusedCompGtJump,
  kFusedCompLtJump,
  kFusedCompEqJump,
  kFusedCompNeJump,
  kFusedCompGeJump,
  kFusedCompLeJump,
  // DeQueue(head) ; EnQueue of the same page variable — the queue-to-queue migration step at
  // the heart of every Table 2 policy. a is the page variable, b the source queue, target the
  // destination queue.
  kFusedDeqHeadEnqHead,
  kFusedDeqHeadEnqTail,
  // Arith LoadImm ; Arith — feed a constant straight into the next arithmetic op. a is the
  // LoadImm destination, b the immediate; target packs (arith dst << 8) | arith src, and
  // reserved holds the second command's own DispatchKind (kArithAdd..kArithMov).
  kFusedLoadImmArith,
  // A command the decoder could not classify (invalid operator code, wrong operand kind, bad
  // flag). Charged like any command, then raises PolicyError with the decode-time diagnostic.
  kTrapError,
  // Control left the command stream (fall-off, jump redirected to slot 0). Raised *before*
  // the command is charged, matching the legacy interpreter's loop-top bounds check.
  kTrapOutside,
};

inline constexpr int kDispatchKindCount = static_cast<int>(DispatchKind::kTrapOutside) + 1;

// True for superinstruction kinds produced by the fusion pass (never by the classifier).
// Fused kinds cover two source commands, so per-opcode predicates like KeepsCondition do not
// map 1:1 onto them — callers reasoning per-opcode must treat them separately.
inline constexpr bool IsFusedKind(DispatchKind k) {
  return k >= DispatchKind::kFusedCompGtJump && k <= DispatchKind::kFusedLoadImmArith;
}

// Whether executing this kind leaves the condition flag to the handler (test commands set it;
// everything else clears it). Must agree with SetsCondition() on the source opcode; the
// dual-path tests verify the two stay in sync.
inline constexpr bool KeepsCondition(DispatchKind k) {
  switch (k) {
    case DispatchKind::kCompGt:
    case DispatchKind::kCompLt:
    case DispatchKind::kCompEq:
    case DispatchKind::kCompNe:
    case DispatchKind::kCompGe:
    case DispatchKind::kCompLe:
    case DispatchKind::kLogicAnd:
    case DispatchKind::kLogicOr:
    case DispatchKind::kLogicXor:
    case DispatchKind::kLogicNot:
    case DispatchKind::kEmptyQ:
    case DispatchKind::kInQ:
    case DispatchKind::kRequest:
    case DispatchKind::kReleaseQueue:
    case DispatchKind::kReleasePage:
    case DispatchKind::kFlush:
    case DispatchKind::kRefBit:
    case DispatchKind::kModBit:
    case DispatchKind::kFind:
    case DispatchKind::kMigrate:
      return true;
    default:
      return false;
  }
}

// One pre-decoded command. Kept to 8 bytes so a whole event stream fits in a few cache lines.
struct DecodedInst {
  DispatchKind kind = DispatchKind::kTrapOutside;
  // Operand-array index 1 — or the Return operand, the Activate event number, or the Arith
  // LoadImm destination.
  uint8_t a = 0;
  // Operand-array index 2 — or the LoadImm immediate, or the Set bit value.
  uint8_t b = 0;
  // The original operator code byte (diagnostics, tracing, disassembly).
  uint8_t raw_op = 0;
  // kJump: resolved branch target (an index into DecodedEvent::insts).
  // kTrapError: index into DecodedEvent::traps.
  uint16_t target = 0;
  uint16_t reserved = 0;
};
static_assert(sizeof(DecodedInst) == 8, "DecodedInst must stay one machine word");

// The decoded form of one event's command stream.
struct DecodedEvent {
  // Empty when the event is not defined. Otherwise insts.size() == raw words + 1: slot 0 and
  // the last slot are kTrapOutside; slots [1, CommandCount] are the decoded commands.
  std::vector<DecodedInst> insts;
  // Messages for kTrapError slots, indexed by DecodedInst::target.
  std::vector<std::string> traps;
  // Every kind in this event has a native JIT template (jit::KindSupported). Set by the
  // decoder so install-time tooling (hipecc, the validator summary) can report eligibility
  // without linking the emitter. Currently every kind is supported, so this is true for all
  // present events; it exists so a future interpreter-only kind degrades gracefully.
  bool jit_eligible = false;

  bool present() const { return !insts.empty(); }
};

// The decode-once IR for a whole policy, cached on the Container beside the raw buffer.
struct DecodedProgram {
  std::vector<DecodedEvent> events;

  bool HasEvent(int event) const {
    return event >= 0 && event < static_cast<int>(events.size()) &&
           events[static_cast<size_t>(event)].present();
  }
  const DecodedEvent& event(int event) const { return events[static_cast<size_t>(event)]; }
};

// A decode-time diagnostic: the classifier could not give `cc` of `event` a meaning. The
// validator surfaces these as install-time rejections; the tolerant decode used by direct
// executor harnesses turns the first one per command into a kTrapError.
struct DecodeDiag {
  int event;
  int cc;  // 0 for stream-level problems
  std::string message;
};

// Decodes every event of `program` against the operand layout `operands`. Never fails:
// unclassifiable commands become traps and are additionally reported to `diags` (if
// non-null). Purely stream-level problems that the legacy interpreter tolerated at run time
// (bad magic word, missing Return) are reported to `diags` only and do not trap.
//
// With `fuse_superinstructions` (the default, and what every install path uses) a post-pass
// folds eligible adjacent pairs into the kFused* kinds above. Pass false to get the plain
// one-command-per-slot stream — the dual-path tests and benchmarks use this to compare the
// two forms; semantics (traces, counters, outcomes) are identical either way.
DecodedProgram DecodePolicy(const PolicyProgram& program, const OperandArray& operands,
                            std::vector<DecodeDiag>* diags = nullptr,
                            bool fuse_superinstructions = true);

// Decoder-backed disassembly of a whole program ("Event 0 (PageFault): ..." listing).
// PolicyProgram::ToString() delegates here so listings come from the same decode pass.
std::string Disassemble(const PolicyProgram& program);

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_DECODED_H_
