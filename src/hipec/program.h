// Policy programs: per-event HiPEC command streams stored in the wired command buffer.
//
// Word 0 of every event's stream is the HiPEC magic number used by the security checker
// (Table 2, "Magic number used for checking"); commands start at command counter 1.
#ifndef HIPEC_HIPEC_PROGRAM_H_
#define HIPEC_HIPEC_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hipec/instruction.h"

namespace hipec::core {

inline constexpr uint32_t kHipecMagic = 0x48695043;  // "HiPC"

struct EventProgram {
  // words[0] == kHipecMagic; words[1..] are encoded instructions; command counter CC indexes
  // this vector directly (CC starts at 1, exactly as in Table 2).
  std::vector<uint32_t> words;

  bool empty() const { return words.size() <= 1; }
  size_t CommandCount() const { return words.empty() ? 0 : words.size() - 1; }
};

class PolicyProgram {
 public:
  PolicyProgram() = default;

  // Installs the command stream for `event` (0 = PageFault, 1 = ReclaimFrame, 2+ = user
  // events). Prepends the magic word.
  void SetEvent(int event, const std::vector<Instruction>& commands);

  // Installs raw words (must already start with the magic). Used by tests that corrupt
  // programs deliberately.
  void SetEventRaw(int event, std::vector<uint32_t> words);

  bool HasEvent(int event) const {
    return event >= 0 && event < static_cast<int>(events_.size()) &&
           !events_[static_cast<size_t>(event)].words.empty();
  }
  const EventProgram& event(int event) const { return events_[static_cast<size_t>(event)]; }
  int event_limit() const { return static_cast<int>(events_.size()); }

  size_t TotalWords() const;

  // Human-readable listing of all events. Delegates to the decoder module's Disassemble()
  // (decoded.h) — raw command words are interpreted in that one place only.
  std::string ToString() const;

 private:
  std::vector<EventProgram> events_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_PROGRAM_H_
