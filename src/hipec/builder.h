// A small assembler-style builder for HiPEC event programs: append commands, bind labels,
// and let the builder patch Jump targets. This is what "hand coding" a policy looks like with
// this library; the pseudo-code translator (src/lang) generates through the same interface.
#ifndef HIPEC_HIPEC_BUILDER_H_
#define HIPEC_HIPEC_BUILDER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "hipec/instruction.h"
#include "hipec/operand.h"
#include "hipec/program.h"
#include "sim/check.h"

namespace hipec::core {

class EventBuilder {
 public:
  using Label = int;

  Label NewLabel() { return next_label_++; }

  // Binds `label` to the *next* command to be emitted.
  void Bind(Label label) {
    HIPEC_CHECK_MSG(!bound_.contains(label), "label bound twice");
    bound_[label] = NextCc();
  }

  // --- raw emit -------------------------------------------------------------------------------
  EventBuilder& Emit(Instruction inst) {
    commands_.push_back(inst);
    return *this;
  }

  // --- convenience emitters (one per command) -------------------------------------------------
  EventBuilder& Return(uint8_t op = 0) { return Emit({Opcode::kReturn, op, 0, 0}); }
  EventBuilder& Arith(uint8_t dst, uint8_t src, ArithOp op) {
    return Emit({Opcode::kArith, dst, src, static_cast<uint8_t>(op)});
  }
  EventBuilder& LoadImm(uint8_t dst, uint8_t imm) {
    return Emit({Opcode::kArith, dst, imm, static_cast<uint8_t>(ArithOp::kLoadImm)});
  }
  // A no-op whose only effect is clearing the condition flag (making a following Jump
  // unconditional after a test command).
  EventBuilder& ClearCondition() {
    return Arith(std_ops::kScratch0, std_ops::kScratch0, ArithOp::kMov);
  }
  EventBuilder& Comp(uint8_t lhs, uint8_t rhs, CompOp op) {
    return Emit({Opcode::kComp, lhs, rhs, static_cast<uint8_t>(op)});
  }
  EventBuilder& Logic(uint8_t dst, uint8_t src, LogicOp op) {
    return Emit({Opcode::kLogic, dst, src, static_cast<uint8_t>(op)});
  }
  EventBuilder& EmptyQ(uint8_t queue) { return Emit({Opcode::kEmptyQ, queue, 0, 0}); }
  EventBuilder& InQ(uint8_t queue, uint8_t page) { return Emit({Opcode::kInQ, queue, page, 0}); }
  // Jump-if-condition-false (see instruction.h for the control-flow rule).
  EventBuilder& JumpIfFalse(Label label) {
    fixups_.emplace_back(commands_.size(), label);
    return Emit({Opcode::kJump, 0, 0, 0});
  }
  // Unconditional jump: clears the condition flag first, so the Jump is always taken.
  EventBuilder& JumpAlways(Label label) {
    ClearCondition();
    return JumpIfFalse(label);
  }
  EventBuilder& DeQueueHead(uint8_t dst, uint8_t queue) {
    return Emit({Opcode::kDeQueue, dst, queue, static_cast<uint8_t>(QueueEnd::kHead)});
  }
  EventBuilder& DeQueueTail(uint8_t dst, uint8_t queue) {
    return Emit({Opcode::kDeQueue, dst, queue, static_cast<uint8_t>(QueueEnd::kTail)});
  }
  EventBuilder& EnQueueHead(uint8_t page, uint8_t queue) {
    return Emit({Opcode::kEnQueue, page, queue, static_cast<uint8_t>(QueueEnd::kHead)});
  }
  EventBuilder& EnQueueTail(uint8_t page, uint8_t queue) {
    return Emit({Opcode::kEnQueue, page, queue, static_cast<uint8_t>(QueueEnd::kTail)});
  }
  EventBuilder& Request(uint8_t size_op, uint8_t dest_queue) {
    return Emit({Opcode::kRequest, size_op, dest_queue, 0});
  }
  EventBuilder& Release(uint8_t op) { return Emit({Opcode::kRelease, op, 0, 0}); }
  EventBuilder& Flush(uint8_t page) { return Emit({Opcode::kFlush, page, 0, 0}); }
  EventBuilder& SetBit(uint8_t page, PageBit bit, bool value) {
    return Emit({Opcode::kSet, page, static_cast<uint8_t>(bit),
                 static_cast<uint8_t>(value ? 1 : 0)});
  }
  EventBuilder& Ref(uint8_t page) { return Emit({Opcode::kRef, page, 0, 0}); }
  EventBuilder& Mod(uint8_t page) { return Emit({Opcode::kMod, page, 0, 0}); }
  EventBuilder& Find(uint8_t dst, uint8_t vaddr_op) {
    return Emit({Opcode::kFind, dst, vaddr_op, 0});
  }
  EventBuilder& Activate(uint8_t event) { return Emit({Opcode::kActivate, event, 0, 0}); }
  EventBuilder& Fifo(uint8_t queue, uint8_t dst) { return Emit({Opcode::kFifo, queue, dst, 0}); }
  EventBuilder& Lru(uint8_t queue, uint8_t dst) { return Emit({Opcode::kLru, queue, dst, 0}); }
  EventBuilder& Mru(uint8_t queue, uint8_t dst) { return Emit({Opcode::kMru, queue, dst, 0}); }
  EventBuilder& Migrate(uint8_t page, uint8_t target_id_op) {
    return Emit({Opcode::kMigrate, page, target_id_op, 0});
  }
  EventBuilder& Unlink(uint8_t page) { return Emit({Opcode::kUnlink, page, 0, 0}); }
  EventBuilder& WeightedSelectMin(uint8_t queue, uint8_t dst) {
    return Emit({Opcode::kWeightedSelect, queue, dst, static_cast<uint8_t>(SelectMode::kMin)});
  }
  EventBuilder& WeightedSelectMax(uint8_t queue, uint8_t dst) {
    return Emit({Opcode::kWeightedSelect, queue, dst, static_cast<uint8_t>(SelectMode::kMax)});
  }
  // dst = saturating dot product of the n weights at [base, base+n) with the n features at
  // [base+n, base+2n).
  EventBuilder& SatDotProduct(uint8_t dst, uint8_t base, uint8_t n) {
    return Emit({Opcode::kSatDotProduct, dst, base, n});
  }
  EventBuilder& PageWordLoad(uint8_t page, uint8_t dst) {
    return Emit({Opcode::kPageWord, page, dst, static_cast<uint8_t>(PageWordOp::kLoad)});
  }
  EventBuilder& PageWordStore(uint8_t page, uint8_t src) {
    return Emit({Opcode::kPageWord, page, src, static_cast<uint8_t>(PageWordOp::kStore)});
  }

  // Resolves labels and returns the command stream.
  std::vector<Instruction> Build() {
    for (const auto& [index, label] : fixups_) {
      auto it = bound_.find(label);
      HIPEC_CHECK_MSG(it != bound_.end(), "unbound label in event program");
      commands_[index].op3 = static_cast<uint8_t>(it->second);
    }
    return commands_;
  }

 private:
  // CC of the next command: commands are 1-based (word 0 is the magic number).
  size_t NextCc() const { return commands_.size() + 1; }

  std::vector<Instruction> commands_;
  std::map<Label, size_t> bound_;
  std::vector<std::pair<size_t, Label>> fixups_;
  Label next_label_ = 0;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_BUILDER_H_
