// The container (§4.1): the kernel object mounted under a VM object when HiPEC is invoked.
// Created from the zone system; records "pointer to next container, pointers to related VM
// objects and threads, pointers to the HiPEC command buffers, pointers to allocated free
// frame lists, operand array, and a timeout flag".
#ifndef HIPEC_HIPEC_CONTAINER_H_
#define HIPEC_HIPEC_CONTAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hipec/decoded.h"
#include "hipec/jit.h"
#include "hipec/operand.h"
#include "hipec/program.h"
#include "mach/page_queue.h"
#include "mach/vm_map.h"
#include "mach/vm_object.h"
#include "sim/clock.h"

namespace hipec::core {

class Container {
 public:
  Container(uint64_t id, mach::Task* task, mach::VmObject* object, PolicyProgram program,
            size_t min_frames, sim::Nanos timeout_ns)
      : id_(id),
        task_(task),
        object_(object),
        program_(std::move(program)),
        min_frames_(min_frames),
        timeout_ns_(timeout_ns),
        free_q_("hipec_free_" + std::to_string(id)),
        active_q_("hipec_active_" + std::to_string(id)),
        inactive_q_("hipec_inactive_" + std::to_string(id)) {}

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  uint64_t id() const { return id_; }
  mach::Task* task() { return task_; }
  mach::VmObject* object() { return object_; }
  const PolicyProgram& program() const { return program_; }

  // The decode-once IR, cached beside the raw command buffer. The engine's install path
  // adopts the IR produced by the decode-and-verify pass; harnesses that drive the executor
  // directly (tests, benchmarks) get a lazy decode against this container's operand layout on
  // first execution. The program is immutable after construction, so the IR never goes stale.
  const DecodedProgram& decoded_program() {
    if (decoded_ == nullptr) {
      decoded_ = std::make_unique<DecodedProgram>(DecodePolicy(program_, operands_));
    }
    return *decoded_;
  }
  void AdoptDecodedProgram(DecodedProgram decoded) {
    decoded_ = std::make_unique<DecodedProgram>(std::move(decoded));
  }

  // The compiled policy (jit.h), cached beside the IR. The engine's install path compiles
  // eagerly when the kernel runs with jit_mode; direct harnesses get a lazy compile from
  // RunEventJit. `jit_compile_attempted` distinguishes "not compiled yet" from "compile
  // returned null (unsupported host)" so the fallback is decided once, not per fault.
  const jit::JitProgram* jit_program() const { return jit_.get(); }
  bool jit_compile_attempted() const { return jit_attempted_; }
  void AdoptJitProgram(std::unique_ptr<jit::JitProgram> jit) {
    jit_ = std::move(jit);
    jit_attempted_ = true;
  }

  // Private frame lists.
  mach::PageQueue& free_q() { return free_q_; }
  mach::PageQueue& active_q() { return active_q_; }
  mach::PageQueue& inactive_q() { return inactive_q_; }
  std::vector<std::unique_ptr<mach::PageQueue>>& user_queues() { return user_queues_; }

  OperandArray& operands() { return operands_; }

  // Frame accounting (maintained by the global frame manager).
  size_t allocated_frames = 0;
  size_t min_frames() const { return min_frames_; }

  // Policy-execution timestamp: set by the executor at the start of every event, cleared on
  // completion; the security checker compares it against the timeout period. Atomic: in
  // real-threads mode the checker thread reads it while the executor runs — the only
  // cross-thread traffic on a container that bypasses its task lock.
  std::atomic<sim::Nanos> exec_start_ns{-1};
  // Set by the security checker when it detects a timeout; the executor aborts on sight.
  std::atomic<bool> kill_requested{false};
  // The event currently being executed (diagnostics).
  std::atomic<int> executing_event{-1};

  sim::Nanos timeout_ns() const { return timeout_ns_; }

  // Command-buffer region in the owning task's address space (wired, read-only).
  uint64_t buffer_vaddr = 0;
  uint64_t buffer_size = 0;

  // QoS weight copied from HipecOptions at registration; consumed by the hipecd drain
  // scheduler (src/server), not by the in-process fault path.
  uint32_t qos_weight = 1;
  // Extension (§6 future work): whether other applications may Migrate frames to this one.
  bool accepts_migration = false;
  // Extension: run the security checker's frame-accounting pass after every event.
  bool strict_accounting = false;

  // Frames the manager wanted from this container but could not collect because its task
  // lock was busy (RunReclaim's try edge, even after bounded backoff). Repaid on the next
  // pass that does land — the ask grows by the accumulated debt — so a container that is
  // perpetually mid-fault cannot dodge reclamation forever while its peers are bled dry.
  // Atomic: written by whichever thread runs the manager's reclaim pass, read by stats.
  std::atomic<size_t> reclaim_debt{0};

  // Lifetime statistics.
  int64_t faults_handled = 0;
  int64_t commands_executed = 0;
  int64_t frames_reclaimed_from = 0;
  // Per-tenant allocation pressure, maintained by the global frame manager so multi-tenant
  // scenarios can report per-application grant/reject/forced-reclaim rates.
  int64_t requests_made = 0;
  int64_t requests_rejected = 0;
  int64_t frames_force_reclaimed = 0;

 private:
  uint64_t id_;
  mach::Task* task_;
  mach::VmObject* object_;
  PolicyProgram program_;
  size_t min_frames_;
  sim::Nanos timeout_ns_;
  mach::PageQueue free_q_;
  mach::PageQueue active_q_;
  mach::PageQueue inactive_q_;
  std::vector<std::unique_ptr<mach::PageQueue>> user_queues_;
  OperandArray operands_;
  std::unique_ptr<DecodedProgram> decoded_;
  std::unique_ptr<jit::JitProgram> jit_;
  bool jit_attempted_ = false;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_CONTAINER_H_
