#include "hipec/engine.h"

#include <unordered_set>
#include <utility>

#include "sim/check.h"

namespace hipec::core {
namespace {

// Interned counter ids — the fault path (HandleFault/RunReclaim) charges these on every
// event, so they must not cost a string-keyed lookup.
const sim::CounterId kCtrRegistrationsRejected =
    sim::InternCounter("engine.registrations_rejected");
const sim::CounterId kCtrAdmissionsRejected = sim::InternCounter("engine.admissions_rejected");
const sim::CounterId kCtrRegistrations = sim::InternCounter("engine.registrations");
const sim::CounterId kCtrPolicyTimeouts = sim::InternCounter("engine.policy_timeouts");
const sim::CounterId kCtrPolicyErrors = sim::InternCounter("engine.policy_errors");
const sim::CounterId kCtrBadReturnPages = sim::InternCounter("engine.bad_return_pages");
const sim::CounterId kCtrDirtyEvictions = sim::InternCounter("engine.dirty_evictions");
const sim::CounterId kCtrReusedFrames = sim::InternCounter("engine.reused_frames");
const sim::CounterId kCtrFaultsHandled = sim::InternCounter("engine.faults_handled");
const sim::CounterId kCtrReclaimFailures = sim::InternCounter("engine.reclaim_failures");
const sim::CounterId kCtrReclaimsRun = sim::InternCounter("engine.reclaims_run");
const sim::CounterId kCtrReclaimLockSkips = sim::InternCounter("engine.reclaim_lock_skips");
const sim::CounterId kCtrReclaimDebtRepaid = sim::InternCounter("engine.reclaim_debt_repaid");

// How many try_lock attempts (with a yield between them) RunReclaim spends on a busy
// victim before recording the ask as debt and moving on. A victim mid-fault typically
// frees its task lock within one scheduling quantum, so a handful of yields converts most
// would-be skips into successful passes without stalling the manager behind a pathological
// holder.
constexpr int kReclaimLockAttempts = 4;
const sim::CounterId kCtrLeaksDetected = sim::InternCounter("engine.leaks_detected");
const sim::CounterId kCtrMemoryPressure =
    sim::InternCounter("engine.memory_pressure_notifications");
const sim::CounterId kCtrTeardowns = sim::InternCounter("engine.teardowns");

}  // namespace

HipecEngine::HipecEngine(mach::Kernel* kernel, FrameManagerConfig manager_config)
    : kernel_(kernel),
      manager_(kernel, manager_config),
      executor_(kernel, &manager_),
      checker_(kernel, &manager_) {
  manager_.SetReclaimRunner(
      [this](Container* c, size_t ask) { return RunReclaim(c, ask); });
  kernel_->SetFaultInterceptor(this);
  if (kernel_->concurrent()) {
    EnableConcurrent();
  }
  checker_.Start();
}

void HipecEngine::EnableConcurrent() {
  mu_.Enable(true);
  manager_.EnableConcurrent();
  executor_.EnableConcurrent();
  checker_.EnableConcurrent();
  container_zone_.EnableConcurrent();
  counters_.EnableConcurrent();
}

HipecEngine::~HipecEngine() {
  checker_.Stop();
  kernel_->SetFaultInterceptor(nullptr);
}

void SetupStandardOperands(Container* container, const HipecOptions& options) {
  OperandArray& ops = container->operands();
  ops.DefineInt(std_ops::kScratch0, 0);
  ops.DefineQueue(std_ops::kFreeQueue, &container->free_q());
  ops.DefineQueueCount(std_ops::kFreeCount, &container->free_q());
  ops.DefineQueue(std_ops::kActiveQueue, &container->active_q());
  ops.DefineQueueCount(std_ops::kActiveCount, &container->active_q());
  ops.DefineQueue(std_ops::kInactiveQueue, &container->inactive_q());
  ops.DefineQueueCount(std_ops::kInactiveCount, &container->inactive_q());
  ops.DefineInt(std_ops::kFreeTarget, options.free_target);
  ops.DefineInt(std_ops::kInactiveTarget, options.inactive_target);
  ops.DefineInt(std_ops::kReservedTarget, options.reserved_target);
  ops.DefineInt(std_ops::kRequestSize, options.request_size);
  ops.DefinePage(std_ops::kPage);
  ops.DefineInt(std_ops::kFaultAddr, 0, /*read_only=*/false);
  ops.DefineInt(std_ops::kReclaimCount, 0);
  ops.DefineInt(std_ops::kResult, 0);
  ops.DefineInt(std_ops::kScratch1, 0);

  uint8_t index = std_ops::kUserBase;
  for (size_t i = 0; i < options.user_queue_count; ++i) {
    container->user_queues().push_back(std::make_unique<mach::PageQueue>(
        "hipec_user_q" + std::to_string(i) + "_" + std::to_string(container->id())));
    ops.DefineQueue(index++, container->user_queues().back().get());
  }
  for (size_t i = 0; i < options.user_int_count; ++i) {
    ops.DefineInt(index++, 0);
  }
  for (size_t i = 0; i < options.user_page_count; ++i) {
    ops.DefinePage(index++);
  }
  for (const HipecOptions::IntInit& init : options.user_int_inits) {
    ops.DefineInt(init.index, init.value, init.read_only);
  }
}

HipecRegion HipecEngine::Register(mach::Task* task, mach::VmObject* object,
                                  const PolicyProgram& program, const HipecOptions& options) {
  sim::ScopedLock lock(mu_);
  // Registration mutates the task's address map (buffer wiring, region insert) — own it for
  // the duration. Rank kTask > kEngine, and the manager lock (admission) nests above both.
  sim::ScopedLock task_lock(task->mutex());
  HipecRegion region;

  Container* container = container_zone_.Alloc(
      next_container_id_.fetch_add(1, std::memory_order_relaxed), task, object, program,
      options.min_frames,
      options.timeout_ns > 0 ? options.timeout_ns : kernel_->costs().policy_timeout_ns);
  SetupStandardOperands(container, options);

  // Static validation — the security checker's decode-and-verify pass. Charged per word (the
  // checker reads the whole buffer once). On success the decoded IR is cached on the
  // container, so the executor never re-parses the raw command buffer.
  kernel_->ctx().Charge(static_cast<sim::Nanos>(program.TotalWords()) *
                        kernel_->costs().command_decode_ns);
  DecodeResult decoded = SecurityChecker::StaticScan(program, container->operands());
  if (!decoded.errors.empty()) {
    container_zone_.Free(container);
    region.error = "policy rejected: " + FormatErrors(decoded.errors);
    counters_.Add(kCtrRegistrationsRejected);
    return region;
  }
  container->AdoptDecodedProgram(std::move(decoded.program));

  // Install-time compilation: translate the freshly decoded IR to native code while the
  // application is still inside the (already expensive) registration syscall, so the first
  // fault pays nothing. Compile() returns null on hosts without an emitter; the executor
  // then falls back to the interpreter per event.
  if (kernel_->params().jit_mode) {
    jit::CompileOptions jit_opts;
    jit_opts.deterministic = kernel_->ctx().vclock != nullptr;
    jit_opts.decode_ns = kernel_->costs().command_decode_ns;
    jit_opts.complex_ns = kernel_->costs().complex_command_ns;
    container->AdoptJitProgram(
        jit::Compile(container->decoded_program(), container->operands(), jit_opts));
  }

  // minFrame admission.
  if (!manager_.AdmitContainer(container)) {
    container_zone_.Free(container);
    region.error = "minFrame request cannot be satisfied";
    counters_.Add(kCtrAdmissionsRejected);
    return region;
  }

  // Wire the command buffer read-only into the application's address space.
  uint64_t buffer_bytes = program.TotalWords() * sizeof(uint32_t);
  container->buffer_vaddr = kernel_->MapWiredRegion(task, std::max<uint64_t>(buffer_bytes, 1));
  container->buffer_size = buffer_bytes;

  container->qos_weight = options.qos_weight == 0 ? 1 : options.qos_weight;
  container->accepts_migration = options.accepts_migration;
  container->strict_accounting = options.strict_accounting;

  object->container = container;
  region.ok = true;
  region.container = container;
  region.addr = task->map().Insert(object, 0, object->size());
  counters_.Add(kCtrRegistrations);
  return region;
}

HipecRegion HipecEngine::VmAllocateHipec(mach::Task* task, uint64_t size,
                                         const PolicyProgram& program,
                                         const HipecOptions& options) {
  kernel_->ctx().Charge(kernel_->costs().null_syscall_ns);
  return Register(task, kernel_->CreateAnonObject(size), program, options);
}

HipecRegion HipecEngine::VmMapHipec(mach::Task* task, mach::VmObject* object,
                                    const PolicyProgram& program, const HipecOptions& options) {
  kernel_->ctx().Charge(kernel_->costs().null_syscall_ns);
  return Register(task, object, program, options);
}

bool HipecEngine::HandleFault(const mach::FaultContext& ctx) {
  auto* container = static_cast<Container*>(ctx.entry->object->container);
  HIPEC_CHECK(container != nullptr);
  mach::Task* task = ctx.task;

  container->operands().WriteInt(std_ops::kFaultAddr, static_cast<int64_t>(ctx.vaddr));
  ExecResult result = executor_.ExecuteEvent(container, kEventPageFault);
  if (!result.ok()) {
    counters_.Add(result.outcome == ExecOutcome::kTimeout ? kCtrPolicyTimeouts
                                                          : kCtrPolicyErrors);
    kernel_->TerminateTask(task, "HiPEC: " + result.error);
    return true;  // handled — by terminating the offender (container is freed now)
  }
  if (!EnforceAccounting(container)) {
    return true;  // leak detected: offender terminated, frames recovered
  }

  mach::VmPage* page = nullptr;
  try {
    page = container->operands().ReadPageOrNull(result.return_operand);
  } catch (const PolicyError&) {
    page = nullptr;
  }
  if (page == nullptr || page->owner != container || page->queue != nullptr) {
    counters_.Add(kCtrBadReturnPages);
    kernel_->TerminateTask(task, "HiPEC: PageFault policy did not return a usable frame");
    return true;
  }

  // The frame may still cache other data (a reused victim the policy chose); evict it first.
  // The victim frame belongs to this container, so any mapping it has is into this task —
  // whose lock the fault path holds — and the evict cannot miss.
  if (page->object != nullptr) {
    if (page->modified) {
      counters_.Add(kCtrDirtyEvictions);
    }
    bool evicted = kernel_->EvictPage(page, /*flush_if_dirty=*/true);
    HIPEC_CHECK(evicted);
    counters_.Add(kCtrReusedFrames);
  }

  kernel_->InstallPage(task, ctx.entry, ctx.vaddr, page, ctx.is_write);
  // Convention: the kernel appends the freshly faulted page to the container's active queue;
  // the policy reorganizes its queues on subsequent events. The page variable named by Return
  // is left pointing at the installed page, so a policy can classify "the previous fault's
  // page" at its next event (see examples/buffer_manager.cpp).
  container->active_q().EnqueueTail(page, kernel_->ctx().now());
  ++container->faults_handled;
  counters_.Add(kCtrFaultsHandled);
  return true;
}

size_t HipecEngine::RunReclaim(Container* container, size_t ask) {
  // The manager calls in holding its own lock; running the victim's policy mutates the
  // victim's container state, which its task lock owns. Manager → task is an inverted edge,
  // so it must be a try-acquisition (DESIGN.md §10). A bounded backoff absorbs victims that
  // are merely mid-fault; a victim that stays busy past the backoff is skipped this round,
  // but the ask is recorded as reclaim debt and added to the next pass that does land, so
  // repeated skips defer reclamation instead of cancelling it (the starvation fix).
  sim::ScopedBackoffTryLock victim_lock(container->task()->mutex(), kReclaimLockAttempts);
  if (!victim_lock.owns()) {
    // Cap the debt at the victim's current allocation (racy read — advisory only): asking
    // for more than it holds is meaningless, and the cap keeps the counter from growing
    // without bound while a hog monopolizes its own lock.
    size_t cap = container->allocated_frames;
    size_t debt = container->reclaim_debt.load(std::memory_order_relaxed);
    while (debt < cap &&
           !container->reclaim_debt.compare_exchange_weak(
               debt, std::min(cap, debt + ask), std::memory_order_relaxed)) {
    }
    counters_.Add(kCtrReclaimLockSkips);
    return 0;
  }
  size_t debt = container->reclaim_debt.exchange(0, std::memory_order_relaxed);
  if (debt > 0) {
    ask += debt;
    counters_.Add(kCtrReclaimDebtRepaid, static_cast<int64_t>(debt));
  }
  container->operands().WriteInt(std_ops::kReclaimCount, static_cast<int64_t>(ask));
  size_t before = container->allocated_frames;
  ExecResult result = executor_.ExecuteEvent(container, kEventReclaimFrame);
  if (!result.ok()) {
    counters_.Add(kCtrReclaimFailures);
    // Termination returns every remaining frame to the pool via OnRegionTeardown.
    kernel_->TerminateTask(container->task(), "HiPEC: " + result.error);
    return before;
  }
  size_t released = before - container->allocated_frames;
  container->frames_reclaimed_from += static_cast<int64_t>(released);
  counters_.Add(kCtrReclaimsRun);
  if (!EnforceAccounting(container)) {
    return before;  // terminated; everything it held is back in the pool
  }
  return released;
}

bool HipecEngine::AccountingConsistent(Container* container) const {
  size_t reachable = container->free_q().count() + container->active_q().count() +
                     container->inactive_q().count();
  for (const auto& queue : container->user_queues()) {
    reachable += queue->count();
  }
  // Off-queue frames referenced by page-variable operands (count each frame once).
  std::unordered_set<const mach::VmPage*> seen;
  for (size_t i = 0; i < OperandArray::kEntries; ++i) {
    const OperandEntry& entry = container->operands().entry(static_cast<uint8_t>(i));
    if (entry.type == OperandType::kPage && entry.page != nullptr &&
        entry.page->owner == container && entry.page->queue == nullptr &&
        seen.insert(entry.page).second) {
      ++reachable;
    }
  }
  return reachable == container->allocated_frames;
}

bool HipecEngine::EnforceAccounting(Container* container) {
  if (!container->strict_accounting || AccountingConsistent(container)) {
    return true;
  }
  counters_.Add(kCtrLeaksDetected);
  kernel_->TerminateTask(container->task(),
                         "HiPEC: policy leaked a frame (strict accounting)");
  return false;
}

void HipecEngine::OnMemoryPressure() {
  counters_.Add(kCtrMemoryPressure);
  manager_.OnMemoryPressure();
}

void HipecEngine::OnRegionTeardown(mach::Task* task, mach::VmMapEntry* entry) {
  (void)task;
  auto* container = static_cast<Container*>(entry->object->container);
  HIPEC_CHECK(container != nullptr);
  manager_.RemoveContainer(container);
  entry->object->container = nullptr;
  container_zone_.Free(container);
  counters_.Add(kCtrTeardowns);
}

}  // namespace hipec::core
