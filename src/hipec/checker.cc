#include "hipec/checker.h"

#include <algorithm>
#include <chrono>

namespace hipec::core {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrWakeups = sim::InternCounter("checker.wakeups");
const sim::CounterId kCtrCpuNs = sim::InternCounter("checker.cpu_ns");
const sim::CounterId kCtrTimeoutsDetected = sim::InternCounter("checker.timeouts_detected");

// Probe ids: per-wakeup scan cost and the adaptive interval's trajectory.
const obs::ProbeId kPrbScanNs = obs::InternProbe("checker.scan_ns");
const obs::ProbeId kPrbWakeupIntervalNs = obs::InternProbe("checker.wakeup_interval_ns");

}  // namespace

DecodeResult SecurityChecker::StaticScan(const PolicyProgram& program,
                                         const OperandArray& operands) {
  return DecodeAndValidate(program, operands);
}

SecurityChecker::SecurityChecker(mach::Kernel* kernel, GlobalFrameManager* manager,
                                 sim::Nanos initial_wakeup_ns)
    : kernel_(kernel), manager_(manager) {
  wakeup_ns_ = initial_wakeup_ns > 0 ? initial_wakeup_ns : kernel_->costs().checker_wakeup_min_ns;
}

SecurityChecker::~SecurityChecker() { Stop(); }

void SecurityChecker::EnableConcurrent() {
  counters_.EnableConcurrent();
  probes_.EnableConcurrent();
}

void SecurityChecker::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  running_.store(true, std::memory_order_release);
  if (kernel_->concurrent()) {
    thread_ = std::thread([this] { ThreadMain(); });
  } else {
    ScheduleNext();
  }
}

void SecurityChecker::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) {
    {
      // Taking the lock before notifying closes the race against a checker thread that has
      // checked running_ but not yet entered wait_for.
      std::lock_guard<std::mutex> lk(cv_mu_);
    }
    cv_.notify_all();
    thread_.join();
  } else {
    kernel_->clock().Cancel(pending_event_);
    pending_event_ = 0;
  }
}

void SecurityChecker::ScheduleNext() {
  pending_event_ = kernel_->clock().ScheduleAfter(
      wakeup_ns_.load(std::memory_order_relaxed), [this] { Wakeup(); },
      "security-checker-wakeup");
}

// The real checker thread (§4.3.3 "a kernel thread ... wakes up periodically"): adaptive
// sleep on a condition variable, one scan per wakeup. Stop() flips running_ and notifies.
void SecurityChecker::ThreadMain() {
  std::unique_lock<std::mutex> lk(cv_mu_);
  while (running_.load(std::memory_order_acquire)) {
    cv_.wait_for(lk, std::chrono::nanoseconds(wakeup_ns_.load(std::memory_order_relaxed)));
    if (!running_.load(std::memory_order_acquire)) {
      break;
    }
    lk.unlock();
    Wakeup();
    lk.lock();
  }
}

void SecurityChecker::Wakeup() {
  const sim::CostModel& costs = kernel_->costs();
  counters_.Add(kCtrWakeups);

  bool detected = false;
  sim::Nanos now;
  size_t scanned;
  {
    // Freeze the container list for the walk. No-op in deterministic mode (the wakeup fires
    // inline from the virtual clock); in real-threads mode the checker holds nothing else,
    // so taking rank kManager is always legal.
    sim::ScopedLock manager_lock(manager_->mutex());
    now = kernel_->ctx().now();
    scanned = manager_->containers().size();

    // The checker steals CPU from whatever runs next; see Kernel::AddDeferredCharge.
    sim::Nanos cpu = costs.checker_wakeup_ns +
                     static_cast<sim::Nanos>(scanned) * costs.checker_scan_per_container_ns;
    kernel_->AddDeferredCharge(cpu);
    counters_.Add(kCtrCpuNs, cpu);
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbScanNs, cpu);
      probes_.Record(kPrbWakeupIntervalNs, wakeup_ns_.load(std::memory_order_relaxed));
    }

    for (Container* c : manager_->containers()) {
      sim::Nanos started = c->exec_start_ns.load(std::memory_order_acquire);
      if (started >= 0 && now - started > c->timeout_ns() &&
          !c->kill_requested.load(std::memory_order_relaxed)) {
        // The executor aborts at its next command fetch.
        c->kill_requested.store(true, std::memory_order_release);
        detected = true;
        counters_.Add(kCtrTimeoutsDetected);
        kernel_->tracer().Record(now, sim::TraceCategory::kChecker, 2, c->id(),
                                 static_cast<uint64_t>(now - started));
        if (timeout_observer_) {
          timeout_observer_(c->id());
        }
      }
    }
  }

  sim::Nanos interval = wakeup_ns_.load(std::memory_order_relaxed);
  kernel_->tracer().Record(now, sim::TraceCategory::kChecker, detected ? 1 : 0,
                           static_cast<uint64_t>(interval), static_cast<uint64_t>(scanned));
  if (detected) {
    interval = std::max(costs.checker_wakeup_min_ns, interval / 2);
  } else {
    interval = std::min(costs.checker_wakeup_max_ns, interval * 2);
  }
  wakeup_ns_.store(interval, std::memory_order_relaxed);
  if (running_.load(std::memory_order_acquire) && !kernel_->concurrent()) {
    ScheduleNext();
  }
}

}  // namespace hipec::core
