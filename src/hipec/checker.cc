#include "hipec/checker.h"

#include <algorithm>

namespace hipec::core {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrWakeups = sim::InternCounter("checker.wakeups");
const sim::CounterId kCtrCpuNs = sim::InternCounter("checker.cpu_ns");
const sim::CounterId kCtrTimeoutsDetected = sim::InternCounter("checker.timeouts_detected");

// Probe ids: per-wakeup scan cost and the adaptive interval's trajectory.
const obs::ProbeId kPrbScanNs = obs::InternProbe("checker.scan_ns");
const obs::ProbeId kPrbWakeupIntervalNs = obs::InternProbe("checker.wakeup_interval_ns");

}  // namespace

DecodeResult SecurityChecker::StaticScan(const PolicyProgram& program,
                                         const OperandArray& operands) {
  return DecodeAndValidate(program, operands);
}

SecurityChecker::SecurityChecker(mach::Kernel* kernel, GlobalFrameManager* manager,
                                 sim::Nanos initial_wakeup_ns)
    : kernel_(kernel), manager_(manager) {
  wakeup_ns_ = initial_wakeup_ns > 0 ? initial_wakeup_ns : kernel_->costs().checker_wakeup_min_ns;
}

SecurityChecker::~SecurityChecker() { Stop(); }

void SecurityChecker::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleNext();
}

void SecurityChecker::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  kernel_->clock().Cancel(pending_event_);
  pending_event_ = 0;
}

void SecurityChecker::ScheduleNext() {
  pending_event_ = kernel_->clock().ScheduleAfter(
      wakeup_ns_, [this] { Wakeup(); }, "security-checker-wakeup");
}

void SecurityChecker::Wakeup() {
  const sim::CostModel& costs = kernel_->costs();
  counters_.Add(kCtrWakeups);

  // The checker steals CPU from whatever runs next; see Kernel::AddDeferredCharge.
  sim::Nanos cpu = costs.checker_wakeup_ns +
                   static_cast<sim::Nanos>(manager_->containers().size()) *
                       costs.checker_scan_per_container_ns;
  kernel_->AddDeferredCharge(cpu);
  counters_.Add(kCtrCpuNs, cpu);
  if (obs::ProbesEnabled()) {
    probes_.Record(kPrbScanNs, cpu);
    probes_.Record(kPrbWakeupIntervalNs, wakeup_ns_);
  }

  bool detected = false;
  sim::Nanos now = kernel_->clock().now();
  for (Container* c : manager_->containers()) {
    if (c->exec_start_ns >= 0 && now - c->exec_start_ns > c->timeout_ns() &&
        !c->kill_requested) {
      c->kill_requested = true;  // the executor aborts at its next command fetch
      detected = true;
      counters_.Add(kCtrTimeoutsDetected);
      kernel_->tracer().Record(now, sim::TraceCategory::kChecker, 2, c->id(),
                               static_cast<uint64_t>(now - c->exec_start_ns));
      if (timeout_observer_) {
        timeout_observer_(c->id());
      }
    }
  }

  kernel_->tracer().Record(now, sim::TraceCategory::kChecker, detected ? 1 : 0,
                           static_cast<uint64_t>(wakeup_ns_),
                           static_cast<uint64_t>(manager_->containers().size()));
  if (detected) {
    wakeup_ns_ = std::max(costs.checker_wakeup_min_ns, wakeup_ns_ / 2);
  } else {
    wakeup_ns_ = std::min(costs.checker_wakeup_max_ns, wakeup_ns_ * 2);
  }
  if (running_) {
    ScheduleNext();
  }
}

}  // namespace hipec::core
