// The in-kernel security checker (§4.3.3): a kernel thread that walks the container list
// looking for policy executions that have run longer than the TimeOut period and marks them
// for termination. In deterministic mode it is modelled as a periodic virtual-time event; in
// real-threads mode it IS a thread — a std::thread sleeping on a condition variable and
// scanning under the manager lock. Either way its sleeping time adapts:
//
//   WakeUp = WakeUp/2   if a timeout was detected this wakeup
//   WakeUp = WakeUp*2   if not
//   clamped to [250 msec, 8 sec]
//
// The checker's other half is static: the syntax/consistency scan run once at registration
// (StaticScan below). Since the decode-once refactor that scan *is* the decode-and-verify
// pass of validator.h — it produces the DecodedProgram IR the executor runs, so anything the
// scan did not prove safe simply cannot reach the interpreter.
#ifndef HIPEC_HIPEC_CHECKER_H_
#define HIPEC_HIPEC_CHECKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "hipec/frame_manager.h"
#include "hipec/validator.h"
#include "mach/kernel.h"
#include "obs/probe.h"
#include "sim/stats.h"

namespace hipec::core {

class SecurityChecker {
 public:
  // The install-time static scan (§4.3.3): decodes and verifies the whole command buffer,
  // returning the IR to cache on the container plus any rejection diagnostics. Pure; callable
  // before any checker instance exists (the engine validates before admission).
  static DecodeResult StaticScan(const PolicyProgram& program, const OperandArray& operands);

  // `initial_wakeup_ns` <= 0 means "start at the minimum interval".
  SecurityChecker(mach::Kernel* kernel, GlobalFrameManager* manager,
                  sim::Nanos initial_wakeup_ns = 0);
  ~SecurityChecker();
  SecurityChecker(const SecurityChecker&) = delete;
  SecurityChecker& operator=(const SecurityChecker&) = delete;

  // Arms the stats sinks for real-threads mode. Must precede Start().
  void EnableConcurrent();

  // Deterministic mode: schedules the periodic wakeup event. Real-threads mode: spawns the
  // checker thread (adaptive condition-variable sleep; Stop() joins it).
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Invoked with the container id each time the checker marks a policy execution for
  // termination. The container may be freed shortly afterwards (the executor aborts and the
  // engine terminates the task), so the observer must not hold onto the pointer — hence the
  // id. The scenario engine uses this to attribute kills to tenants.
  using TimeoutObserver = std::function<void(uint64_t container_id)>;
  void SetTimeoutObserver(TimeoutObserver observer) { timeout_observer_ = std::move(observer); }

  sim::Nanos current_wakeup_interval() const {
    return wakeup_ns_.load(std::memory_order_relaxed);
  }
  int64_t wakeups() const { return counters_.Get("checker.wakeups"); }
  int64_t timeouts_detected() const { return counters_.Get("checker.timeouts_detected"); }
  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }

 private:
  // One scan + interval adaptation. Shared by both modes; takes the manager lock (a no-op in
  // deterministic mode) to freeze the container list while walking it.
  void Wakeup();
  void ScheduleNext();
  void ThreadMain();

  mach::Kernel* kernel_;
  GlobalFrameManager* manager_;
  // Atomic: the checker thread adapts it while foreground threads read it for reporting.
  std::atomic<sim::Nanos> wakeup_ns_;
  TimeoutObserver timeout_observer_;
  std::atomic<bool> running_{false};
  sim::VirtualClock::EventId pending_event_ = 0;

  // Real-threads mode only. cv_mu_ is internal to the sleep/wake handshake (never held while
  // touching kernel state), so it sits outside the documented hierarchy.
  std::thread thread_;
  std::mutex cv_mu_;
  std::condition_variable cv_;

  sim::CounterSet counters_;
  obs::ProbeSet probes_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_CHECKER_H_
