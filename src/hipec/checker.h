// The in-kernel security checker (§4.3.3): a kernel thread, modelled as a periodic virtual-
// time event, that walks the container list looking for policy executions that have run
// longer than the TimeOut period and marks them for termination. Its sleeping time adapts:
//
//   WakeUp = WakeUp/2   if a timeout was detected this wakeup
//   WakeUp = WakeUp*2   if not
//   clamped to [250 msec, 8 sec]
//
// (The static syntax/consistency pass of the checker lives in validator.h and runs at
// registration time.)
#ifndef HIPEC_HIPEC_CHECKER_H_
#define HIPEC_HIPEC_CHECKER_H_

#include "hipec/frame_manager.h"
#include "mach/kernel.h"
#include "sim/stats.h"

namespace hipec::core {

class SecurityChecker {
 public:
  // `initial_wakeup_ns` <= 0 means "start at the minimum interval".
  SecurityChecker(mach::Kernel* kernel, GlobalFrameManager* manager,
                  sim::Nanos initial_wakeup_ns = 0);
  ~SecurityChecker();
  SecurityChecker(const SecurityChecker&) = delete;
  SecurityChecker& operator=(const SecurityChecker&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

  sim::Nanos current_wakeup_interval() const { return wakeup_ns_; }
  int64_t wakeups() const { return counters_.Get("checker.wakeups"); }
  int64_t timeouts_detected() const { return counters_.Get("checker.timeouts_detected"); }
  sim::CounterSet& counters() { return counters_; }

 private:
  void Wakeup();
  void ScheduleNext();

  mach::Kernel* kernel_;
  GlobalFrameManager* manager_;
  sim::Nanos wakeup_ns_;
  bool running_ = false;
  sim::VirtualClock::EventId pending_event_ = 0;
  sim::CounterSet counters_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_CHECKER_H_
