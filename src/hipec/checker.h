// The in-kernel security checker (§4.3.3): a kernel thread, modelled as a periodic virtual-
// time event, that walks the container list looking for policy executions that have run
// longer than the TimeOut period and marks them for termination. Its sleeping time adapts:
//
//   WakeUp = WakeUp/2   if a timeout was detected this wakeup
//   WakeUp = WakeUp*2   if not
//   clamped to [250 msec, 8 sec]
//
// The checker's other half is static: the syntax/consistency scan run once at registration
// (StaticScan below). Since the decode-once refactor that scan *is* the decode-and-verify
// pass of validator.h — it produces the DecodedProgram IR the executor runs, so anything the
// scan did not prove safe simply cannot reach the interpreter.
#ifndef HIPEC_HIPEC_CHECKER_H_
#define HIPEC_HIPEC_CHECKER_H_

#include <cstdint>
#include <functional>

#include "hipec/frame_manager.h"
#include "hipec/validator.h"
#include "mach/kernel.h"
#include "obs/probe.h"
#include "sim/stats.h"

namespace hipec::core {

class SecurityChecker {
 public:
  // The install-time static scan (§4.3.3): decodes and verifies the whole command buffer,
  // returning the IR to cache on the container plus any rejection diagnostics. Pure; callable
  // before any checker instance exists (the engine validates before admission).
  static DecodeResult StaticScan(const PolicyProgram& program, const OperandArray& operands);

  // `initial_wakeup_ns` <= 0 means "start at the minimum interval".
  SecurityChecker(mach::Kernel* kernel, GlobalFrameManager* manager,
                  sim::Nanos initial_wakeup_ns = 0);
  ~SecurityChecker();
  SecurityChecker(const SecurityChecker&) = delete;
  SecurityChecker& operator=(const SecurityChecker&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

  // Invoked with the container id each time the checker marks a policy execution for
  // termination. The container may be freed shortly afterwards (the executor aborts and the
  // engine terminates the task), so the observer must not hold onto the pointer — hence the
  // id. The scenario engine uses this to attribute kills to tenants.
  using TimeoutObserver = std::function<void(uint64_t container_id)>;
  void SetTimeoutObserver(TimeoutObserver observer) { timeout_observer_ = std::move(observer); }

  sim::Nanos current_wakeup_interval() const { return wakeup_ns_; }
  int64_t wakeups() const { return counters_.Get("checker.wakeups"); }
  int64_t timeouts_detected() const { return counters_.Get("checker.timeouts_detected"); }
  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }

 private:
  void Wakeup();
  void ScheduleNext();

  mach::Kernel* kernel_;
  GlobalFrameManager* manager_;
  sim::Nanos wakeup_ns_;
  TimeoutObserver timeout_observer_;
  bool running_ = false;
  sim::VirtualClock::EventId pending_event_ = 0;
  sim::CounterSet counters_;
  obs::ProbeSet probes_;
};

}  // namespace hipec::core

#endif  // HIPEC_HIPEC_CHECKER_H_
