// The paper's motivating database scenario (§5.3): a nested-loops join whose outer table is
// larger than physical memory. Under the kernel's LRU-like default the join thrashes
// cyclically; a HiPEC MRU policy turns most of each scan into hits.
//
// Usage: database_join [outer_mb] [memory_mb]     (defaults: 50 40)
#include <cstdio>
#include <cstdlib>

#include "workloads/join_workload.h"

using namespace hipec;  // NOLINT: example
using workloads::JoinConfig;
using workloads::JoinMode;
using workloads::JoinResult;
using workloads::RunJoin;

int main(int argc, char** argv) {
  constexpr int64_t kMb = 1024 * 1024;
  int64_t outer_mb = argc > 1 ? std::atoll(argv[1]) : 50;
  int64_t memory_mb = argc > 2 ? std::atoll(argv[2]) : 40;
  if (outer_mb <= 0 || memory_mb <= 0 || memory_mb > 60) {
    std::fprintf(stderr, "usage: %s [outer_mb] [memory_mb<=60]\n", argv[0]);
    return 1;
  }

  JoinConfig config;
  config.outer_bytes = outer_mb * kMb;
  config.memory_bytes = memory_mb * kMb;

  std::printf("Nested-loops join: %lld MB outer table, 4 KB pinned inner table,\n"
              "64-byte tuples, 64 scans, %lld MB frame budget.\n\n",
              static_cast<long long>(outer_mb), static_cast<long long>(memory_mb));

  config.mode = JoinMode::kMachDefault;
  JoinResult lru = RunJoin(config);
  std::printf("Default kernel (LRU-like):  %8.2f min, %9lld faults  (PF_l analytic %lld)\n",
              lru.minutes, static_cast<long long>(lru.page_faults),
              static_cast<long long>(lru.analytic_faults));

  config.mode = JoinMode::kHipecMru;
  JoinResult mru = RunJoin(config);
  std::printf("HiPEC MRU policy:           %8.2f min, %9lld faults  (PF_m analytic %lld)\n",
              mru.minutes, static_cast<long long>(mru.page_faults),
              static_cast<long long>(mru.analytic_faults));

  if (mru.elapsed > 0) {
    std::printf("\nSpeedup from the right policy: %.2fx\n",
                static_cast<double>(lru.elapsed) / static_cast<double>(mru.elapsed));
  }
  if (outer_mb <= memory_mb) {
    std::printf("(The outer table fits in memory, so both policies only pay the cold scan;\n"
                "try an outer table larger than the budget, e.g. `database_join 55 40`.)\n");
  }
  return 0;
}
