// A continuous-media scenario from the paper's introduction (§1 cites multimedia file
// systems as victims of fixed LRU-like replacement): a jukebox server plays a looping video
// clip with a real-time frame deadline while a background indexer scans a large data set.
//
// Under the default kernel the indexer's pressure evicts the player's pages — frames miss
// their 33 ms deadline. Under HiPEC the player's private frame list isolates it completely.
//
// Usage: multimedia_stream [loops]     (default 4)
#include <cstdio>
#include <cstdlib>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/stats.h"

using namespace hipec;  // NOLINT: example
using mach::kPageSize;

namespace {

constexpr uint64_t kClipPages = 5120;     // 20 MB clip
constexpr uint64_t kPlayerPool = 6144;    // 24 MB private pool: the clip fits
constexpr uint64_t kIndexerPages = 25000; // ~100 MB background scan
constexpr int kPagesPerFrame = 8;         // 32 KB per video frame
constexpr sim::Nanos kDecodeNs = 5 * sim::kMillisecond;
constexpr sim::Nanos kDeadlineNs = 33 * sim::kMillisecond;  // 30 fps

struct PlaybackStats {
  int64_t frames = 0;
  int64_t deadline_misses = 0;
  int64_t faults = 0;
  sim::Nanos worst_frame = 0;
};

PlaybackStats Play(bool use_hipec, int loops) {
  mach::KernelParams params;
  params.total_frames = 16384;  // 64 MB machine
  params.kernel_reserved_frames = 2048;
  params.hipec_build = use_hipec;
  mach::Kernel kernel(params);

  mach::Task* player = kernel.CreateTask("player");
  mach::VmObject* clip = kernel.CreateFileObject("clip", kClipPages * kPageSize);

  std::unique_ptr<core::HipecEngine> engine;
  uint64_t clip_addr;
  if (use_hipec) {
    engine = std::make_unique<core::HipecEngine>(&kernel, core::FrameManagerConfig{0.6, 64});
    core::HipecOptions options;
    options.min_frames = kPlayerPool;
    core::HipecRegion region = engine->VmMapHipec(
        player, clip, policies::FifoPolicy(policies::CommandStyle::kSimple), options);
    if (!region.ok) {
      std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
      std::exit(1);
    }
    clip_addr = region.addr;
  } else {
    clip_addr = kernel.VmMapFile(player, clip);
  }

  mach::Task* indexer = kernel.CreateTask("indexer");
  uint64_t index_addr = kernel.VmAllocate(indexer, kIndexerPages * kPageSize);
  uint64_t index_pos = 0;

  // Warm the clip once (initial buffering; not counted against deadlines).
  for (uint64_t p = 0; p < kClipPages; ++p) {
    kernel.Touch(player, clip_addr + p * kPageSize, false);
  }

  PlaybackStats stats;
  for (int loop = 0; loop < loops; ++loop) {
    for (uint64_t frame = 0; frame < kClipPages / kPagesPerFrame; ++frame) {
      sim::Nanos start = kernel.clock().now();
      int64_t faults_before = kernel.counters().Get("kernel.page_faults");
      for (int p = 0; p < kPagesPerFrame; ++p) {
        kernel.Touch(player,
                     clip_addr + (frame * kPagesPerFrame + static_cast<uint64_t>(p)) * kPageSize,
                     false);
      }
      stats.faults += kernel.counters().Get("kernel.page_faults") - faults_before;
      kernel.clock().Advance(kDecodeNs);
      sim::Nanos frame_time = kernel.clock().now() - start;
      ++stats.frames;
      if (frame_time > kDeadlineNs) {
        ++stats.deadline_misses;
      }
      if (frame_time > stats.worst_frame) {
        stats.worst_frame = frame_time;
      }
      // The indexer keeps grinding between frames.
      for (int p = 0; p < 24; ++p) {
        kernel.Touch(indexer, index_addr + (index_pos % kIndexerPages) * kPageSize, true);
        ++index_pos;
      }
    }
  }
  return stats;
}

void Report(const char* label, const PlaybackStats& stats) {
  std::printf("%-28s frames %6lld   misses %5lld (%.2f%%)   mid-play faults %6lld   "
              "worst frame %s\n",
              label, static_cast<long long>(stats.frames),
              static_cast<long long>(stats.deadline_misses),
              100.0 * static_cast<double>(stats.deadline_misses) /
                  static_cast<double>(stats.frames),
              static_cast<long long>(stats.faults),
              sim::FormatNanos(stats.worst_frame).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int loops = argc > 1 ? std::atoi(argv[1]) : 4;
  std::printf("Jukebox server: 20 MB looping clip at 30 fps (33 ms deadline) against a\n"
              "100 MB background indexer on a 64 MB machine, %d loops.\n\n", loops);
  Report("default kernel:", Play(/*use_hipec=*/false, loops));
  Report("HiPEC private pool:", Play(/*use_hipec=*/true, loops));
  std::printf("\nWith a private frame list the indexer cannot evict the player's pages, so\n"
              "playback runs fault-free after the initial buffering.\n");
  return 0;
}
