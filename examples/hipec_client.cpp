// hipec-client: a standalone client for hipecd (docs/SERVER.md).
//
// Connects to a running daemon, installs a policy over a fresh region, streams touch/flush
// requests through the shared-memory ring, reaps completions, and leaves orderly. The CI
// server-smoke job runs several of these in parallel against one hipecd.
//
//   ./build/examples/hipecd --socket=/tmp/h.sock &
//   ./build/examples/hipec_client --socket=/tmp/h.sock --pages=128 --passes=8
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "policies/policies.h"
#include "server/client.h"

using namespace hipec;  // NOLINT: example

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/hipec.sock";
  std::string name = "hipec-client";
  uint64_t pages = 128;
  uint64_t passes = 8;
  uint64_t min_frames = 32;
  uint64_t qos = 1;
  std::string policy = "fifo2nd";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto take = [&](const char* prefix, std::string* out) {
      size_t n = std::strlen(prefix);
      if (std::strncmp(arg, prefix, n) != 0) {
        return false;
      }
      *out = arg + n;
      return true;
    };
    std::string v;
    if (take("--socket=", &socket_path) || take("--name=", &name) ||
        take("--policy=", &policy)) {
      continue;
    }
    if (take("--pages=", &v)) {
      pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (take("--passes=", &v)) {
      passes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (take("--min-frames=", &v)) {
      min_frames = std::strtoull(v.c_str(), nullptr, 10);
    } else if (take("--qos=", &v)) {
      qos = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: hipec_client [--socket=PATH] [--name=S] [--pages=N] [--passes=N]\n"
                   "                    [--min-frames=N] [--qos=N] "
                   "[--policy=fifo2nd|fifo|lru|mru|clock]\n");
      return 2;
    }
  }

  core::PolicyProgram program;
  if (policy == "fifo2nd") {
    program = policies::FifoSecondChancePolicy();
  } else if (policy == "fifo") {
    program = policies::FifoPolicy();
  } else if (policy == "lru") {
    program = policies::LruPolicy();
  } else if (policy == "mru") {
    program = policies::MruPolicy();
  } else if (policy == "clock") {
    program = policies::ClockPolicy();
  } else {
    std::fprintf(stderr, "hipec_client: unknown policy '%s'\n", policy.c_str());
    return 2;
  }

  server::Client client;
  std::string error;
  if (!client.Connect(socket_path, name, static_cast<uint32_t>(qos), &error)) {
    std::fprintf(stderr, "hipec_client: connect: %s\n", error.c_str());
    return 1;
  }
  server::ClientInstallOptions options;
  options.region_pages = pages;
  options.min_frames = static_cast<uint32_t>(min_frames);
  options.free_target = 4;
  options.inactive_target = 8;
  if (!client.Install(program, options, &error)) {
    std::fprintf(stderr, "hipec_client: install: %s\n", error.c_str());
    return 1;
  }
  for (uint64_t pass = 0; pass < passes; ++pass) {
    for (uint64_t page = 0; page < pages; ++page) {
      bool is_write = (page % 4) == 0;
      if (!client.SubmitTouch(static_cast<uint32_t>(page), is_write)) {
        std::fprintf(stderr, "hipec_client: submission stalled out\n");
        return 1;
      }
    }
    // A few flushes per pass keep the write-back path warm.
    if (!client.SubmitFlush(static_cast<uint32_t>(pass % pages))) {
      std::fprintf(stderr, "hipec_client: flush submission stalled out\n");
      return 1;
    }
  }
  if (!client.WaitForCompletions(10'000'000'000ull)) {
    std::fprintf(stderr, "hipec_client: completions timed out (%llu/%llu)\n",
                 static_cast<unsigned long long>(client.completed()),
                 static_cast<unsigned long long>(client.submitted()));
    return 1;
  }
  if (!client.Teardown(&error)) {
    std::fprintf(stderr, "hipec_client: teardown: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "hipec_client %s: %llu submitted, %llu ok, %llu rejected, %llu stalls, container %llu\n",
      name.c_str(), static_cast<unsigned long long>(client.submitted()),
      static_cast<unsigned long long>(client.completed_ok()),
      static_cast<unsigned long long>(client.completed_rejected()),
      static_cast<unsigned long long>(client.backpressure_stalls()),
      static_cast<unsigned long long>(client.container_id()));
  client.Goodbye();
  return 0;
}
