// hipecd: the HiPEC policy-server daemon (docs/SERVER.md).
//
// One process owns the kernel + engine; any number of client processes connect over a
// Unix-domain socket, install their caching policies through the usual validate + JIT +
// admission path, and stream touch/flush requests over per-client shared-memory rings.
//
//   ./build/examples/hipecd --socket=/tmp/hipec.sock            # serve until SIGINT/SIGTERM
//   ./build/examples/hipecd --socket=/tmp/h.sock --duration-ms=500
//   ./build/examples/hipecd --selfcheck                          # in-process smoke test
//
// --selfcheck starts a server, forks a few real client processes against it (one of which
// is SIGKILLed mid-burst to exercise the death path), then runs the frame-invariant auditor
// and exits nonzero on any violation. CI runs it as a ctest smoke.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "policies/policies.h"
#include "scenario/invariants.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/lock.h"

using namespace hipec;  // NOLINT: example

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

bool ParseU64(const char* arg, const char* prefix, uint64_t* out) {
  size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) {
    return false;
  }
  *out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

bool ParseStr(const char* arg, const char* prefix, std::string* out) {
  size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) {
    return false;
  }
  *out = arg + n;
  return true;
}

// One forked client process: install FIFO-second-chance, touch a working set larger than
// min_frames so the policy actually evicts, reap everything, leave orderly.
int RunSelfcheckClient(const std::string& socket_path, int index, bool orderly_exit) {
  server::Client client;
  std::string error;
  if (!client.Connect(socket_path, "selfcheck#" + std::to_string(index), 1, &error)) {
    std::fprintf(stderr, "client %d: connect: %s\n", index, error.c_str());
    return 1;
  }
  server::ClientInstallOptions options;
  options.region_pages = 64;
  options.min_frames = 16;
  options.free_target = 4;
  options.inactive_target = 8;
  if (!client.Install(policies::FifoSecondChancePolicy(), options, &error)) {
    std::fprintf(stderr, "client %d: install: %s\n", index, error.c_str());
    return 1;
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (uint32_t page = 0; page < 64; ++page) {
      if (!client.SubmitTouch(page, (page % 4) == 0)) {
        std::fprintf(stderr, "client %d: submit stalled out\n", index);
        return 1;
      }
    }
  }
  if (!client.WaitForCompletions(5'000'000'000ull)) {
    std::fprintf(stderr, "client %d: completions timed out\n", index);
    return 1;
  }
  if (client.completed_ok() == 0) {
    std::fprintf(stderr, "client %d: nothing completed ok\n", index);
    return 1;
  }
  if (orderly_exit) {
    client.Goodbye();
  }
  // Non-orderly clients just _exit; the daemon sees EOF and reclaims.
  return 0;
}

int RunSelfcheck() {
  std::string socket_path =
      "/tmp/hipecd-selfcheck-" + std::to_string(getpid()) + ".sock";
  server::ServerConfig config;
  config.socket_path = socket_path;
  config.drain_threads = 2;
  config.heartbeat_timeout_ns = 2'000'000'000ull;
  server::Server daemon(config);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "selfcheck: start: %s\n", error.c_str());
    return 1;
  }

  constexpr int kClients = 4;
  pid_t pids[kClients];
  for (int i = 0; i < kClients; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      // Child: real client process. _exit so the parent's kernel state is untouched.
      _exit(RunSelfcheckClient(socket_path, i, /*orderly_exit=*/i % 2 == 0));
    }
    pids[i] = pid;
  }
  // Kill one client mid-burst: the daemon must reclaim its frames like a checker kill.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  kill(pids[kClients - 1], SIGKILL);

  int failures = 0;
  for (int i = 0; i < kClients; ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
    if (i == kClients - 1) {
      continue;  // the SIGKILLed one
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "selfcheck: client %d failed\n", i);
      ++failures;
    }
  }
  // Let the daemon notice the killed client's EOF and finish the teardown.
  for (int spin = 0; spin < 500 && daemon.LiveSessionCount() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    sim::ExclusiveWorldGuard world(daemon.kernel().world());
    scenario::AuditReport audit = scenario::AuditFrameInvariants(daemon.engine());
    if (!audit.ok) {
      std::fprintf(stderr, "selfcheck: auditor: %s\n", audit.violation.c_str());
      ++failures;
    }
  }
  int64_t deaths = daemon.counters().Get("server.client_deaths");
  int64_t completions = daemon.counters().Get("server.completions");
  daemon.Stop();
  if (deaths < 1) {
    std::fprintf(stderr, "selfcheck: expected at least one client death, saw %lld\n",
                 static_cast<long long>(deaths));
    ++failures;
  }
  if (failures != 0) {
    return 1;
  }
  std::printf("hipecd selfcheck ok: %d clients, %lld completions, %lld death(s), auditor green\n",
              kClients, static_cast<long long>(completions),
              static_cast<long long>(deaths));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig config;
  config.socket_path = "/tmp/hipec.sock";
  uint64_t duration_ms = 0;
  uint64_t heartbeat_ms = 1000;
  bool selfcheck = false;
  bool probes = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v;
    if (std::strcmp(arg, "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(arg, "--probes") == 0) {
      probes = true;
    } else if (ParseStr(arg, "--socket=", &config.socket_path)) {
    } else if (ParseU64(arg, "--frames=", &v)) {
      config.total_frames = v;
    } else if (ParseU64(arg, "--drain-threads=", &v)) {
      config.drain_threads = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--ring-slots=", &v)) {
      config.ring_slots = static_cast<uint32_t>(v);
    } else if (ParseU64(arg, "--max-clients=", &v)) {
      config.max_clients = static_cast<uint32_t>(v);
    } else if (ParseU64(arg, "--heartbeat-ms=", &v)) {
      heartbeat_ms = v;
    } else if (ParseU64(arg, "--duration-ms=", &v)) {
      duration_ms = v;
    } else {
      std::fprintf(stderr,
                   "usage: hipecd [--socket=PATH] [--frames=N] [--drain-threads=N]\n"
                   "              [--ring-slots=N] [--max-clients=N] [--heartbeat-ms=N]\n"
                   "              [--duration-ms=N] [--probes] [--selfcheck]\n");
      return 2;
    }
  }
  if (selfcheck) {
    return RunSelfcheck();
  }
  if (probes) {
    obs::ProbeSet::SetEnabled(true);
  }
  config.heartbeat_timeout_ns = heartbeat_ms * 1'000'000ull;

  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  server::Server daemon(config);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "hipecd: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "hipecd: serving on %s (%zu drain threads, %u-slot rings)\n",
               config.socket_path.c_str(), config.drain_threads, config.ring_slots);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(duration_ms);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  daemon.Stop();
  std::fprintf(stderr, "hipecd: final counters\n%s", daemon.counters().ToString().c_str());
  {
    sim::ExclusiveWorldGuard world(daemon.kernel().world());
    scenario::AuditReport audit = scenario::AuditFrameInvariants(daemon.engine());
    if (!audit.ok) {
      std::fprintf(stderr, "hipecd: AUDIT VIOLATION: %s\n", audit.violation.c_str());
      return 1;
    }
  }
  return 0;
}
