// Quickstart: install your own page-replacement policy in five steps.
//
//   1. Boot a simulated machine (the Mach-like kernel with the HiPEC extension).
//   2. Write a replacement policy in the pseudo-code language and compile it.
//   3. Register a region under specific control with vm_allocate_hipec().
//   4. Touch memory; the kernel interprets *your* commands on every fault.
//   5. Read the statistics.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "hipec/engine.h"
#include "lang/compiler.h"
#include "mach/kernel.h"
#include "sim/stats.h"

using namespace hipec;  // NOLINT: example
using mach::kPageSize;

int main() {
  // 1. A 64 MB machine running the HiPEC-modified kernel.
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("quickstart");

  // 2. A most-recently-used policy, right for cyclic scans: serve faults from the private
  //    free list; once it is empty, evict the page used most recently (flushing it first if
  //    dirty). Every specific application must also say how it gives frames back when the
  //    kernel asks (the ReclaimFrame event).
  const char* policy_source = R"(
    Event PageFault() {
      if (_free_count > 0)
        page = de_queue_head(_free_queue)
      else begin
        page = mru(_active_queue)
        if (page.dirty) flush(page)
      endif
      return(page)
    }
    Event ReclaimFrame() {
      while (reclaim_count > 0) {
        release(_free_queue)
        reclaim_count = reclaim_count - 1
      }
    }
  )";
  lang::CompiledPolicy compiled = lang::CompilePolicy(policy_source);
  std::printf("Compiled policy:\n%s\n", compiled.program.ToString().c_str());

  // 3. A 256-page region under specific control, with 128 private frames (minFrame).
  core::HipecOptions options = compiled.options;
  options.min_frames = 128;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 256 * kPageSize, compiled.program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return 1;
  }
  std::printf("Region at 0x%llx, %zu private frames, command buffer wired at 0x%llx\n\n",
              static_cast<unsigned long long>(region.addr), region.container->allocated_frames,
              static_cast<unsigned long long>(region.container->buffer_vaddr));

  // 4. Scan the region three times: 256 pages through 128 frames. Under MRU the second and
  //    third scans keep the front of the region resident (LRU would fault on everything).
  sim::Nanos start = kernel.clock().now();
  for (int scan = 0; scan < 3; ++scan) {
    for (uint64_t p = 0; p < 256; ++p) {
      kernel.Touch(task, region.addr + p * kPageSize, /*is_write=*/true);
    }
  }

  // 5. Statistics.
  std::printf("3 scans of 256 pages through 128 frames (MRU policy):\n");
  std::printf("  faults handled by the policy : %lld (LRU-like would take %d)\n",
              static_cast<long long>(engine.counters().Get("engine.faults_handled")), 3 * 256);
  std::printf("  commands interpreted         : %lld\n",
              static_cast<long long>(region.container->commands_executed));
  std::printf("  asynchronous flushes         : %lld\n",
              static_cast<long long>(engine.manager().counters().Get("manager.flushes_async")));
  std::printf("  virtual time elapsed         : %s\n",
              sim::FormatNanos(kernel.clock().now() - start).c_str());
  return 0;
}
