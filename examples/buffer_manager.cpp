// A DBMS buffer manager on HiPEC — the system the paper's conclusion says the authors
// "plan to design ... that uses HiPEC to improve the performance" (§6).
//
// One mapped database file holds two segments: B-tree index pages (a Zipf-hot set probed by
// point lookups) and heap pages (read by both point lookups and long range scans). A single
// fixed kernel policy mistreats one of the two: LRU lets every range scan flush the hot
// index. The HiPEC policy below segregates the segments *inside one region*:
//
//   * it remembers the page it returned at the previous fault (the engine leaves the
//     returned page variable pointing at the installed page),
//   * classifies it by the faulting address against `heap_base`, and — using the Unlink
//     extension command — moves heap pages onto a private `heap_q`,
//   * evicts from `heap_q` first (most-recently-used first, so scans consume themselves),
//     touching the index's queue only when no heap page is left.
//
// Usage: buffer_manager [lookups] [scans]      (defaults: 12000 12)
#include <cstdio>
#include <cstdlib>

#include "hipec/engine.h"
#include "lang/compiler.h"
#include "mach/kernel.h"
#include "sim/random.h"
#include "sim/stats.h"

using namespace hipec;  // NOLINT: example
using mach::kPageSize;

namespace {

constexpr uint64_t kIndexPages = 600;   // hot B-tree levels
constexpr uint64_t kHeapPages = 3000;   // table heap
constexpr uint64_t kTotalPages = kIndexPages + kHeapPages;
constexpr uint64_t kPoolFrames = 1100;  // buffer pool: index + working heap window
constexpr uint64_t kScanRun = 400;      // pages per range scan

const char* kBufferPolicy = R"(
  queue heap_q
  Event PageFault() {
    // Classify the page installed by the previous fault: heap pages move to heap_q.
    if (prev_valid > 0) begin
      if (in_queue(_active_queue, prev_page)) begin
        if (prev_addr >= heap_base) begin
          unlink(prev_page)
          en_queue_tail(heap_q, prev_page)
        endif
      endif
    endif
    prev_addr = fault_addr
    prev_valid = 1

    if (_free_count > 0) begin
      prev_page = de_queue_head(_free_queue)
      return(prev_page)
    endif
    // Scans eat their own tail: evict the most recent heap page first; only raid the
    // index segment when no heap page remains.
    if (!empty(heap_q))
      prev_page = de_queue_tail(heap_q)
    else
      prev_page = de_queue_head(_active_queue)
    if (prev_page.dirty) flush(prev_page)
    return(prev_page)
  }
  Event ReclaimFrame() {
    while (reclaim_count > 0) {
      release(_free_queue)
      reclaim_count = reclaim_count - 1
    }
  }
)";

struct RunStats {
  int64_t index_faults = 0;
  int64_t heap_faults = 0;
  sim::Nanos elapsed = 0;
};

RunStats Run(bool use_hipec, int lookups, int scans) {
  mach::KernelParams params;
  params.total_frames = 4096;
  params.kernel_reserved_frames = 4096 - kPoolFrames - 256;  // pool + slack
  params.hipec_build = use_hipec;
  mach::Kernel kernel(params);
  mach::Task* db = kernel.CreateTask("dbms");
  mach::VmObject* file = kernel.CreateFileObject("database", kTotalPages * kPageSize);

  std::unique_ptr<core::HipecEngine> engine;
  uint64_t base;
  if (use_hipec) {
    engine = std::make_unique<core::HipecEngine>(&kernel, core::FrameManagerConfig{0.9, 64});
    lang::CompiledPolicy compiled = lang::CompilePolicy(kBufferPolicy);
    core::HipecOptions options = compiled.options;
    options.min_frames = kPoolFrames;
    core::HipecRegion region = engine->VmMapHipec(db, file, compiled.program, options);
    if (!region.ok) {
      std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
      std::exit(1);
    }
    base = region.addr;
    region.container->operands().WriteInt(
        compiled.symbols.at("heap_base"),
        static_cast<int64_t>(base + kIndexPages * kPageSize));
  } else {
    base = kernel.VmMapFile(db, file);
  }

  sim::ZipfGenerator hot_index(kIndexPages, 0.8, 7);
  sim::Rng rng(11);
  uint64_t scan_cursor = 0;
  int lookups_per_scan = scans > 0 ? lookups / scans : lookups + 1;

  RunStats stats;
  sim::Nanos start = kernel.clock().now();
  auto touch_counted = [&](uint64_t page_index, int64_t* bucket) {
    int64_t before = kernel.counters().Get("kernel.page_faults");
    kernel.Touch(db, base + page_index * kPageSize, false);
    *bucket += kernel.counters().Get("kernel.page_faults") - before;
  };

  for (int i = 0; i < lookups; ++i) {
    // Point lookup: two index probes (root levels stay hottest) + one heap fetch.
    touch_counted(hot_index.Next(), &stats.index_faults);
    touch_counted(hot_index.Next(), &stats.index_faults);
    touch_counted(kIndexPages + rng.Below(kHeapPages), &stats.heap_faults);
    kernel.clock().Advance(30 * sim::kMicrosecond);  // tuple processing

    if (scans > 0 && i % lookups_per_scan == lookups_per_scan - 1) {
      // Range scan: a long sequential heap run.
      for (uint64_t s = 0; s < kScanRun; ++s) {
        touch_counted(kIndexPages + (scan_cursor % kHeapPages), &stats.heap_faults);
        ++scan_cursor;
        kernel.clock().Advance(8 * sim::kMicrosecond);
      }
    }
  }
  stats.elapsed = kernel.clock().now() - start;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  int lookups = argc > 1 ? std::atoi(argv[1]) : 12000;
  int scans = argc > 2 ? std::atoi(argv[2]) : 12;
  std::printf("DBMS buffer manager: %d point lookups over a %llu-page index (Zipf-hot) and\n"
              "%llu-page heap, interleaved with %d range scans of %llu pages;\n"
              "%llu-frame buffer pool.\n\n",
              lookups, static_cast<unsigned long long>(kIndexPages),
              static_cast<unsigned long long>(kHeapPages), scans,
              static_cast<unsigned long long>(kScanRun),
              static_cast<unsigned long long>(kPoolFrames));

  RunStats lru = Run(false, lookups, scans);
  RunStats hipec = Run(true, lookups, scans);
  std::printf("%-26s %14s %14s %14s\n", "kernel", "index faults", "heap faults", "elapsed");
  std::printf("%-26s %14lld %14lld %14s\n", "default (LRU-like)",
              static_cast<long long>(lru.index_faults), static_cast<long long>(lru.heap_faults),
              sim::FormatNanos(lru.elapsed).c_str());
  std::printf("%-26s %14lld %14lld %14s\n", "HiPEC buffer policy",
              static_cast<long long>(hipec.index_faults),
              static_cast<long long>(hipec.heap_faults),
              sim::FormatNanos(hipec.elapsed).c_str());
  std::printf("\nThe segregating policy keeps the index hot set resident through every range\n"
              "scan, while scans recycle their own pages (MRU within the heap segment).\n");
  return 0;
}
