// hipecc — the stand-alone pseudo-code translator (§4.3.4: "The translator is implemented as
// a stand alone program and is also incorporated into the user level library").
//
// Reads a policy written in the pseudo-code language and emits the compiled HiPEC command
// streams as a human-readable disassembly and/or the hex exchange format that applications
// can load at run time.
//
// Usage: hipecc [--hex] [--disasm] [file.hp]      (reads stdin without a file;
//                                                  both outputs by default)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lang/assembler.h"
#include "lang/compiler.h"

int main(int argc, char** argv) {
  bool want_hex = false;
  bool want_disasm = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hex") == 0) {
      want_hex = true;
    } else if (std::strcmp(argv[i], "--disasm") == 0) {
      want_disasm = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--hex] [--disasm] [file.hp]\n", argv[0]);
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (!want_hex && !want_disasm) {
    want_hex = want_disasm = true;
  }

  std::string source;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "hipecc: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    hipec::lang::CompiledPolicy compiled = hipec::lang::CompilePolicy(source);
    if (want_disasm) {
      std::printf("# disassembly\n%s", compiled.program.ToString().c_str());
      std::printf("# events:");
      for (const auto& [name, number] : compiled.events) {
        std::printf(" %s=%d", name.c_str(), number);
      }
      std::printf("\n# user operands: %zu queues, %zu ints, %zu pages\n",
                  compiled.options.user_queue_count, compiled.options.user_int_count,
                  compiled.options.user_page_count);
    }
    if (want_hex) {
      std::printf("%s", hipec::lang::DumpHex(compiled.program).c_str());
    }
  } catch (const hipec::lang::CompileError& e) {
    std::fprintf(stderr, "hipecc: %s\n", e.what());
    return 1;
  }
  return 0;
}
