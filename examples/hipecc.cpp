// hipecc — the stand-alone pseudo-code translator (§4.3.4: "The translator is implemented as
// a stand alone program and is also incorporated into the user level library").
//
// Reads a policy written in the pseudo-code language and emits the compiled HiPEC command
// streams as a human-readable disassembly and/or the hex exchange format that applications
// can load at run time.
//
// With --check the compiled program is additionally run through the same decode-and-verify
// pass the kernel applies at registration (against a placeholder of the standard operand
// layout), so a policy can be vetted offline before it is ever installed.
//
// With --emit=jit the decoded program is handed to the install-time template JIT exactly as
// the kernel would do it, and the result is dumped as a fragment map (per command slot:
// dispatch kind, code offset) with a hexdump of each fragment's native bytes — the debugging
// view of what actually runs when DispatchMode::kJit is active. On hosts without an emitter
// it reports that and succeeds, mirroring the kernel's interpreter fallback.
//
// Usage: hipecc [--hex] [--disasm] [--check] [--emit=jit] [file.hp]
//        (reads stdin without a file; hex + disasm by default)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hipec/checker.h"
#include "hipec/engine.h"
#include "hipec/jit.h"
#include "lang/assembler.h"
#include "lang/compiler.h"
#include "sim/cost_model.h"

namespace {

namespace core = hipec::core;
namespace ops = hipec::core::std_ops;

// Mirrors the layout SetupStandardOperands installs for a real container, with placeholder
// queues: the decode-and-verify pass only looks at operand *kinds*, so this is enough to
// reproduce the kernel's install-time verdict offline.
core::OperandArray PlaceholderLayout(const core::HipecOptions& options,
                                     std::vector<std::unique_ptr<hipec::mach::PageQueue>>* queues) {
  auto make_queue = [&](const std::string& name) {
    queues->push_back(std::make_unique<hipec::mach::PageQueue>(name));
    return queues->back().get();
  };
  core::OperandArray layout;
  layout.DefineInt(ops::kScratch0, 0);
  layout.DefineQueue(ops::kFreeQueue, make_queue("check_free"));
  layout.DefineQueueCount(ops::kFreeCount, queues->back().get());
  layout.DefineQueue(ops::kActiveQueue, make_queue("check_active"));
  layout.DefineQueueCount(ops::kActiveCount, queues->back().get());
  layout.DefineQueue(ops::kInactiveQueue, make_queue("check_inactive"));
  layout.DefineQueueCount(ops::kInactiveCount, queues->back().get());
  layout.DefineInt(ops::kFreeTarget, 0);
  layout.DefineInt(ops::kInactiveTarget, 0);
  layout.DefineInt(ops::kReservedTarget, 0);
  layout.DefineInt(ops::kRequestSize, 0);
  layout.DefinePage(ops::kPage);
  layout.DefineInt(ops::kFaultAddr, 0);
  layout.DefineInt(ops::kReclaimCount, 0);
  layout.DefineInt(ops::kResult, 0);
  layout.DefineInt(ops::kScratch1, 0);
  uint8_t index = ops::kUserBase;
  for (size_t i = 0; i < options.user_queue_count; ++i) {
    layout.DefineQueue(index++, make_queue("check_user_q" + std::to_string(i)));
  }
  for (size_t i = 0; i < options.user_int_count; ++i) {
    layout.DefineInt(index++, 0);
  }
  for (size_t i = 0; i < options.user_page_count; ++i) {
    layout.DefinePage(index++);
  }
  for (const core::HipecOptions::IntInit& init : options.user_int_inits) {
    layout.DefineInt(init.index, init.value, init.read_only);
  }
  return layout;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_hex = false;
  bool want_disasm = false;
  bool want_check = false;
  bool want_jit = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hex") == 0) {
      want_hex = true;
    } else if (std::strcmp(argv[i], "--disasm") == 0) {
      want_disasm = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      want_check = true;
    } else if (std::strcmp(argv[i], "--emit=jit") == 0) {
      want_jit = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--hex] [--disasm] [--check] [--emit=jit] [file.hp]\n", argv[0]);
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (!want_hex && !want_disasm && !want_check && !want_jit) {
    want_hex = want_disasm = true;
  }

  std::string source;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "hipecc: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    hipec::lang::CompiledPolicy compiled = hipec::lang::CompilePolicy(source);
    if (want_disasm) {
      std::printf("# disassembly\n%s", compiled.program.ToString().c_str());
      std::printf("# events:");
      for (const auto& [name, number] : compiled.events) {
        std::printf(" %s=%d", name.c_str(), number);
      }
      std::printf("\n# user operands: %zu queues, %zu ints, %zu pages\n",
                  compiled.options.user_queue_count, compiled.options.user_int_count,
                  compiled.options.user_page_count);
    }
    if (want_hex) {
      std::printf("%s", hipec::lang::DumpHex(compiled.program).c_str());
    }
    if (want_check) {
      std::vector<std::unique_ptr<hipec::mach::PageQueue>> queues;
      core::OperandArray layout = PlaceholderLayout(compiled.options, &queues);
      core::DecodeResult decoded = core::SecurityChecker::StaticScan(compiled.program, layout);
      if (!decoded.errors.empty()) {
        std::fprintf(stderr, "hipecc: policy rejected: %s\n",
                     core::FormatErrors(decoded.errors).c_str());
        return 1;
      }
      std::printf("# check: ok (%zu words decode and verify against the standard layout)\n",
                  compiled.program.TotalWords());
    }
    if (want_jit) {
      // Same pipeline as the kernel's install path: decode + fuse against the standard
      // layout, then hand the IR to the template JIT with the default cost model baked in.
      std::vector<std::unique_ptr<hipec::mach::PageQueue>> queues;
      core::OperandArray layout = PlaceholderLayout(compiled.options, &queues);
      core::DecodedProgram decoded = core::DecodePolicy(compiled.program, layout);
      core::jit::CompileOptions jit_options;
      hipec::sim::CostModel costs;
      jit_options.deterministic = true;
      jit_options.decode_ns = costs.command_decode_ns;
      jit_options.complex_ns = costs.complex_command_ns;
      std::unique_ptr<core::jit::JitProgram> jit_program =
          core::jit::Compile(decoded, layout, jit_options);
      if (jit_program == nullptr) {
        std::printf("# emit=jit: no template emitter on this host (%s); the kernel would "
                    "fall back to the IR interpreter\n",
                    core::jit::Available() ? "compile failed" : "unsupported architecture");
      } else {
        std::printf("%s", core::jit::DumpJit(*jit_program).c_str());
      }
    }
  } catch (const hipec::lang::CompileError& e) {
    std::fprintf(stderr, "hipecc: %s\n", e.what());
    return 1;
  }
  return 0;
}
