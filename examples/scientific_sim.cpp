// A scientific-simulation scenario from the paper's introduction (§1 cites particle
// simulators): a particle-in-cell code alternates between sweeping a large field grid
// sequentially and updating a particle list with skewed random access.
//
// The two data structures want *different* policies: MRU for the cyclically-swept grid,
// LRU for the hot-set particle list. HiPEC attaches one container — one policy — per region,
// which no single kernel-wide policy can match. This example also shows one task running two
// specific regions at once.
//
// Usage: scientific_sim [timesteps]     (default 6)
#include <cstdio>
#include <cstdlib>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "workloads/access_patterns.h"

using namespace hipec;  // NOLINT: example
using mach::kPageSize;

namespace {

constexpr uint64_t kGridPages = 3000;      // the field grid (swept every timestep)
constexpr uint64_t kParticlePages = 1200;  // the particle list (Zipf-hot)
constexpr uint64_t kGridPool = 2000;       // private frames for the grid (grid doesn't fit)
constexpr uint64_t kParticlePool = 1100;   // private frames for the particles (hot set fits)

struct SimStats {
  int64_t grid_faults = 0;
  int64_t particle_faults = 0;
  sim::Nanos elapsed = 0;
};

SimStats Run(bool use_hipec, int timesteps) {
  mach::KernelParams params;
  params.total_frames = 8192;
  params.kernel_reserved_frames = 4892;  // ~3300 usable frames << 4200-page working set
  params.hipec_build = use_hipec;
  mach::Kernel kernel(params);
  mach::Task* task = kernel.CreateTask("pic_sim");

  std::unique_ptr<core::HipecEngine> engine;
  uint64_t grid_addr, particle_addr;
  if (use_hipec) {
    engine = std::make_unique<core::HipecEngine>(&kernel, core::FrameManagerConfig{0.97, 64});
    core::HipecOptions grid_options;
    grid_options.min_frames = kGridPool;
    core::HipecRegion grid = engine->VmAllocateHipec(
        task, kGridPages * kPageSize, policies::MruPolicy(policies::CommandStyle::kSimple),
        grid_options);
    core::HipecOptions particle_options;
    particle_options.min_frames = kParticlePool;
    core::HipecRegion particles = engine->VmAllocateHipec(
        task, kParticlePages * kPageSize,
        policies::LruPolicy(policies::CommandStyle::kComplex), particle_options);
    if (!grid.ok || !particles.ok) {
      std::fprintf(stderr, "registration failed: %s %s\n", grid.error.c_str(),
                   particles.error.c_str());
      std::exit(1);
    }
    grid_addr = grid.addr;
    particle_addr = particles.addr;
  } else {
    grid_addr = kernel.VmAllocate(task, kGridPages * kPageSize);
    particle_addr = kernel.VmAllocate(task, kParticlePages * kPageSize);
  }

  SimStats stats;
  sim::ZipfGenerator hot_particles(kParticlePages, 0.85, 42);
  sim::Nanos start = kernel.clock().now();
  for (int step = 0; step < timesteps; ++step) {
    // Phase 1: field solve — sequential sweep over the whole grid.
    int64_t before = kernel.counters().Get("kernel.page_faults");
    for (uint64_t p = 0; p < kGridPages; ++p) {
      kernel.Touch(task, grid_addr + p * kPageSize, true);
    }
    stats.grid_faults += kernel.counters().Get("kernel.page_faults") - before;

    // Phase 2: particle push — Zipf-skewed updates to the particle list.
    before = kernel.counters().Get("kernel.page_faults");
    for (int i = 0; i < 4000; ++i) {
      kernel.Touch(task, particle_addr + hot_particles.Next() * kPageSize, true);
    }
    stats.particle_faults += kernel.counters().Get("kernel.page_faults") - before;
  }
  stats.elapsed = kernel.clock().now() - start;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  int timesteps = argc > 1 ? std::atoi(argv[1]) : 6;
  std::printf("Particle-in-cell simulation, %d timesteps: a 3000-page grid swept\n"
              "sequentially + a 1200-page Zipf-hot particle list, ~3300 usable frames.\n\n",
              timesteps);
  SimStats mach_run = Run(false, timesteps);
  SimStats hipec_run = Run(true, timesteps);
  std::printf("%-24s %14s %18s %14s\n", "kernel", "grid faults", "particle faults", "elapsed");
  std::printf("%-24s %14lld %18lld %14s\n", "default (one policy)",
              static_cast<long long>(mach_run.grid_faults),
              static_cast<long long>(mach_run.particle_faults),
              sim::FormatNanos(mach_run.elapsed).c_str());
  std::printf("%-24s %14lld %18lld %14s\n", "HiPEC (MRU + LRU)",
              static_cast<long long>(hipec_run.grid_faults),
              static_cast<long long>(hipec_run.particle_faults),
              sim::FormatNanos(hipec_run.elapsed).c_str());
  std::printf("\nPer-region policies cut the grid sweep's cyclic faults (MRU) while the\n"
              "particle list's hot set stays resident in its own pool (LRU).\n");
  return 0;
}
